package sched

import (
	"math"
	"strings"
	"testing"
)

// twoCluster builds a scheduler over two clusters with the given knobs
// and no scenario jobs; tests Push what they need.
func twoCluster(t *testing.T, maxKW, thresholds []float64, guard, migrate bool) *Scheduler {
	t.Helper()
	cfg := &Config{MaxBatchKW: maxKW, Thresholds: thresholds, PeakGuard: guard, Migrate: migrate}
	var siblings [][]int
	if migrate {
		siblings = [][]int{{1}, {0}}
	}
	s, err := NewScheduler(cfg, 2, siblings)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func dispatch(s *Scheduler, step int, decision, headroom []float64) (batchKW, shedKWh []float64) {
	batchKW = make([]float64, 2)
	shedKWh = make([]float64, 2)
	s.Dispatch(step, 1.0, decision, headroom, batchKW, shedKWh)
	s.Compact()
	return batchKW, shedKWh
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := func() *Config {
		return &Config{
			MaxBatchKW: []float64{10, 10},
			Thresholds: []float64{50, 50},
			Jobs: []Job{
				{Cluster: 0, Arrival: 0, Deadline: 2, EnergyKWh: 5, MinFraction: 0.5},
				{Cluster: 1, Arrival: 1, Deadline: 3, EnergyKWh: 5, MinFraction: 1},
			},
		}
	}
	if err := good().Validate(2); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"short maxkw", func(c *Config) { c.MaxBatchKW = c.MaxBatchKW[:1] }, "MaxBatchKW"},
		{"short thresholds", func(c *Config) { c.Thresholds = c.Thresholds[:1] }, "Thresholds"},
		{"negative capacity", func(c *Config) { c.MaxBatchKW[0] = -1 }, "MaxBatchKW[0]"},
		{"nan threshold", func(c *Config) { c.Thresholds[1] = math.NaN() }, "Thresholds[1]"},
		{"cluster out of range", func(c *Config) { c.Jobs[0].Cluster = 2 }, "cluster"},
		{"deadline before arrival", func(c *Config) { c.Jobs[0].Deadline = 0 }, "deadline"},
		{"unsorted arrivals", func(c *Config) { c.Jobs[0].Arrival = 3; c.Jobs[0].Deadline = 4 }, "sorted"},
		{"zero energy", func(c *Config) { c.Jobs[1].EnergyKWh = 0 }, "energy"},
		{"fraction above one", func(c *Config) { c.Jobs[1].MinFraction = 1.5 }, "fraction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good()
			tc.mutate(cfg)
			err := cfg.Validate(2)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

func TestMigrationNeedsSiblings(t *testing.T) {
	cfg := &Config{MaxBatchKW: []float64{1, 1}, Thresholds: []float64{1, 1}, Migrate: true}
	if _, err := NewScheduler(cfg, 2, nil); err == nil {
		t.Fatal("migration without siblings accepted")
	}
}

func TestExpiryShedsRemaining(t *testing.T) {
	s := twoCluster(t, []float64{0, 0}, []float64{100, 100}, false, false)
	s.Push(0, QueuedJob{Deadline: 3, TotalKWh: 8, ServedKWh: 3})
	// Zero capacity: nothing serves, and at step 3 the deadline passes.
	for step := 0; step < 3; step++ {
		if _, shed := dispatch(s, step, []float64{0, 0}, nil); shed[0] != 0 {
			t.Fatalf("step %d shed %v before the deadline", step, shed[0])
		}
	}
	_, shed := dispatch(s, 3, []float64{0, 0}, nil)
	if shed[0] != 5 {
		t.Fatalf("shed %v kWh at expiry, want the 5 remaining", shed[0])
	}
	if got := s.QueuedKWh(0); got != 0 {
		t.Fatalf("%v kWh still queued after expiry", got)
	}
}

func TestUrgentPassIgnoresGatesButNotBudget(t *testing.T) {
	// Gate shut (price 200 > threshold 100) and zero peak headroom, but a
	// firm job due in 2 steps must still make floor progress.
	s := twoCluster(t, []float64{4, 4}, []float64{100, 100}, true, false)
	s.Push(0, QueuedJob{Deadline: 2, TotalKWh: 10, MinFraction: 1})
	batchKW, _ := dispatch(s, 0, []float64{200, 200}, []float64{0, 0})
	// Need 10 kWh over 2 remaining steps = 5 kWh/step, capped by the
	// 4 kWh budget.
	if batchKW[0] != 4 {
		t.Fatalf("urgent pass served %v kW, want the 4 kW budget cap", batchKW[0])
	}
	if got := s.QueuedKWh(0); got != 6 {
		t.Fatalf("queued %v kWh, want 6", got)
	}
}

func TestPriceGateBlocksAndDrains(t *testing.T) {
	s := twoCluster(t, []float64{100, 100}, []float64{50, 50}, false, false)
	s.Push(0, QueuedJob{Deadline: 100, TotalKWh: 30})
	// Gate shut: price above threshold, floor zero — nothing moves.
	batchKW, _ := dispatch(s, 0, []float64{51, 0}, nil)
	if batchKW[0] != 0 {
		t.Fatalf("served %v kW through a shut gate", batchKW[0])
	}
	// Gate open (at the threshold counts): the whole job fits the budget.
	batchKW, _ = dispatch(s, 1, []float64{50, 0}, nil)
	if batchKW[0] != 30 {
		t.Fatalf("served %v kW through an open gate, want 30", batchKW[0])
	}
	if got := s.QueuedKWh(0); got != 0 {
		t.Fatalf("queued %v kWh after a full drain", got)
	}
}

func TestPeakGuardCapsGatedServing(t *testing.T) {
	s := twoCluster(t, []float64{100, 100}, []float64{50, 50}, true, false)
	s.Push(0, QueuedJob{Deadline: 100, TotalKWh: 30})
	// Open gate but only 12 kW of headroom below the monthly peak.
	batchKW, _ := dispatch(s, 0, []float64{10, 10}, []float64{12, 12})
	if batchKW[0] != 12 {
		t.Fatalf("served %v kW, want the 12 kW headroom cap", batchKW[0])
	}
	// nil headroom disables the guard even when configured.
	batchKW, _ = dispatch(s, 1, []float64{10, 10}, nil)
	if batchKW[0] != 18 {
		t.Fatalf("served %v kW with guard disabled, want the remaining 18", batchKW[0])
	}
}

func TestMigrationServesAtOpenSibling(t *testing.T) {
	s := twoCluster(t, []float64{100, 100}, []float64{50, 50}, false, true)
	s.Push(0, QueuedJob{Deadline: 100, TotalKWh: 30})
	// Home gate shut, sibling open and idle: the energy executes at
	// cluster 1 while the job stays in cluster 0's queue.
	batchKW, _ := dispatch(s, 0, []float64{80, 20}, nil)
	if batchKW[0] != 0 || batchKW[1] != 30 {
		t.Fatalf("batch draw = %v, want [0 30]", batchKW)
	}
	if got := s.QueuedKWh(0); got != 0 {
		t.Fatalf("job left %v kWh queued after migration", got)
	}
	// Both gates shut: energy waits at home.
	s.Push(0, QueuedJob{Deadline: 100, TotalKWh: 5})
	batchKW, _ = dispatch(s, 1, []float64{80, 80}, nil)
	if batchKW[0] != 0 || batchKW[1] != 0 {
		t.Fatalf("batch draw = %v with every gate shut", batchKW)
	}
}

func TestMigrationRespectsSiblingBudget(t *testing.T) {
	s := twoCluster(t, []float64{100, 10}, []float64{50, 50}, false, true)
	s.Push(0, QueuedJob{Deadline: 100, TotalKWh: 30})
	s.Push(1, QueuedJob{Deadline: 100, TotalKWh: 4})
	// Sibling serves its own 4 kWh first; only 6 kWh of its 10 kWh
	// budget is left for the migrant.
	batchKW, _ := dispatch(s, 0, []float64{80, 20}, nil)
	if batchKW[1] != 10 {
		t.Fatalf("sibling drew %v kW, want its full 10 kW budget", batchKW[1])
	}
	if got := s.QueuedKWh(0); got != 24 {
		t.Fatalf("home queue has %v kWh, want 24 after a 6 kWh migration", got)
	}
}

func TestServeSnapsToCompletion(t *testing.T) {
	s := twoCluster(t, []float64{100, 100}, []float64{50, 50}, false, false)
	// Serving in thirds accumulates float residue; the final serve must
	// snap to exactly TotalKWh so Compact drops the job.
	s.Push(0, QueuedJob{Deadline: 100, TotalKWh: 0.3, ServedKWh: 0.1 + 0.1})
	batchKW, _ := dispatch(s, 0, []float64{0, 0}, nil)
	if batchKW[0] == 0 {
		t.Fatal("nothing served")
	}
	if n := len(s.State()[0].Jobs); n != 0 {
		t.Fatalf("%d jobs survive completion", n)
	}
}

func TestEnqueueArrivalsCursor(t *testing.T) {
	cfg := &Config{
		MaxBatchKW: []float64{10, 10},
		Thresholds: []float64{50, 50},
		Jobs: []Job{
			{Cluster: 0, Arrival: 0, Deadline: 10, EnergyKWh: 1},
			{Cluster: 1, Arrival: 2, Deadline: 10, EnergyKWh: 2},
			{Cluster: 0, Arrival: 5, Deadline: 10, EnergyKWh: 3},
		},
	}
	s, err := NewScheduler(cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.EnqueueArrivals(0)
	if s.QueuedKWh(0) != 1 || s.QueuedKWh(1) != 0 {
		t.Fatalf("step 0 queues = %v/%v", s.QueuedKWh(0), s.QueuedKWh(1))
	}
	s.EnqueueArrivals(4)
	if s.QueuedKWh(1) != 2 || s.QueuedKWh(0) != 1 {
		t.Fatalf("step 4 queues = %v/%v", s.QueuedKWh(0), s.QueuedKWh(1))
	}
	// Repeated calls at the same step enqueue nothing twice.
	s.EnqueueArrivals(4)
	if s.QueuedKWh(1) != 2 {
		t.Fatal("job enqueued twice")
	}
	s.EnqueueArrivals(5)
	if s.QueuedKWh(0) != 4 {
		t.Fatalf("step 5 queue = %v, want 4", s.QueuedKWh(0))
	}
}

func TestStateRoundTripAndCursorRederivation(t *testing.T) {
	cfg := &Config{
		MaxBatchKW: []float64{10, 10},
		Thresholds: []float64{50, 50},
		Jobs: []Job{
			{Cluster: 0, Arrival: 0, Deadline: 20, EnergyKWh: 1},
			{Cluster: 0, Arrival: 8, Deadline: 20, EnergyKWh: 3},
		},
	}
	s, err := NewScheduler(cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.EnqueueArrivals(0)
	s.Push(1, QueuedJob{Deadline: 15, TotalKWh: 7, ServedKWh: 2, MinFraction: 0.5})
	state := s.State()

	r, err := NewScheduler(cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RestoreState(state, 5); err != nil {
		t.Fatal(err)
	}
	if r.QueuedKWh(0) != 1 || r.QueuedKWh(1) != 5 {
		t.Fatalf("restored queues = %v/%v", r.QueuedKWh(0), r.QueuedKWh(1))
	}
	// The arrival cursor must resume at the first job with Arrival >= 5,
	// so the Arrival-8 job still enqueues later.
	r.EnqueueArrivals(8)
	if r.QueuedKWh(0) != 4 {
		t.Fatalf("post-restore arrival missing: queue = %v", r.QueuedKWh(0))
	}
	// State() must deep-copy: mutating the snapshot cannot touch live
	// queues.
	state2 := r.State()
	state2[1].Jobs[0].ServedKWh = 6
	if r.QueuedKWh(1) != 5 {
		t.Fatal("State() aliases the live queue")
	}
}

func TestRestoreStateRejectsCorruptQueues(t *testing.T) {
	cfg := &Config{MaxBatchKW: []float64{10, 10}, Thresholds: []float64{50, 50}}
	cases := []struct {
		name  string
		state []QueueState
	}{
		{"length mismatch", []QueueState{{}}},
		{"stale deadline", []QueueState{{Jobs: []QueuedJob{{Deadline: 4, TotalKWh: 1}}}, {}}},
		{"non-positive total", []QueueState{{Jobs: []QueuedJob{{Deadline: 9, TotalKWh: 0}}}, {}}},
		{"served beyond total", []QueueState{{Jobs: []QueuedJob{{Deadline: 9, TotalKWh: 1, ServedKWh: 1}}}, {}}},
		{"bad fraction", []QueueState{{Jobs: []QueuedJob{{Deadline: 9, TotalKWh: 1, MinFraction: 2}}}, {}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewScheduler(cfg, 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.RestoreState(tc.state, 5); err == nil {
				t.Fatal("corrupt state accepted")
			}
		})
	}
}
