// Package sched implements the deferrable (batch) traffic class: jobs
// with an arrival step, a deadline, an energy size, and a
// partial-execution floor, held in per-cluster FIFO queues and drained
// by a deterministic dispatch rule.
//
// The dispatch rule is the demand-charge/price-chasing policy from
// PAPERS.md's partial-execution and workload-modulation lines of work:
// batch energy is deferred whenever serving it now would mint a new
// monthly demand-charge peak (the peak guard) or whenever the lagged
// decision price at the home cluster sits above that cluster's
// percentile threshold — and, when migration is enabled, deferred
// energy chases low prices across the clusters reachable through the
// routing policy's candidate structure.
//
// Everything here is a pure function of its inputs: the scheduler is
// part of the deterministic engine core, is serialized into checkpoints,
// and must replay, restore, and shard-merge bit for bit.
package sched

import (
	"fmt"
	"math"
)

// Job is one deferrable batch job as configured in a scenario or
// ingested by the daemon. Steps are engine step indices; Deadline is
// exclusive — the job may execute during steps [Arrival, Deadline), so
// a job with Deadline == Arrival+1 must run entirely on arrival.
type Job struct {
	// Cluster is the home cluster index the job arrives at.
	Cluster int
	// Arrival is the step index the job becomes available.
	Arrival int
	// Deadline is the first step index the job may no longer run.
	// Whatever energy is still unserved when the deadline passes is
	// shed (counted, never silently dropped).
	Deadline int
	// EnergyKWh is the total grid energy the job needs.
	EnergyKWh float64
	// MinFraction is the partial-execution floor in [0, 1]: the
	// fraction of EnergyKWh that must be served by the deadline
	// regardless of price or peak guards. 1 means the job is firm;
	// 0 means it may be shed entirely when conditions never improve.
	MinFraction float64
}

// Config is the scenario-level description of the batch class. It is
// pure data: hashable into the world hash and sliceable by
// Scenario.Shard.
type Config struct {
	// MaxBatchKW caps the extra grid power the batch class may draw at
	// each cluster, one entry per cluster.
	MaxBatchKW []float64
	// Thresholds is the per-cluster decision-price ceiling ($/MWh):
	// non-urgent batch energy is served at a cluster only while the
	// lagged decision price is at or below its threshold.
	Thresholds []float64
	// PeakGuard defers non-urgent batch energy that would push a
	// cluster's grid draw above its recorded monthly demand-charge
	// peak.
	PeakGuard bool
	// Migrate lets deferred batch energy execute at another cluster in
	// the same routing component when that cluster's price gate is
	// open and it has budget and peak headroom to spare.
	Migrate bool
	// Jobs are the scenario-driven arrivals, sorted by Arrival. Daemon
	// runs leave this empty and ingest jobs at runtime instead.
	Jobs []Job
}

// Validate checks cfg against a fleet of nc clusters.
func (c *Config) Validate(nc int) error {
	if len(c.MaxBatchKW) != nc {
		return fmt.Errorf("sched: MaxBatchKW has %d entries for %d clusters", len(c.MaxBatchKW), nc)
	}
	if len(c.Thresholds) != nc {
		return fmt.Errorf("sched: Thresholds has %d entries for %d clusters", len(c.Thresholds), nc)
	}
	for i, kw := range c.MaxBatchKW {
		if math.IsNaN(kw) || math.IsInf(kw, 0) || kw < 0 {
			return fmt.Errorf("sched: MaxBatchKW[%d] = %v", i, kw)
		}
	}
	for i, th := range c.Thresholds {
		if math.IsNaN(th) || math.IsInf(th, 0) {
			return fmt.Errorf("sched: Thresholds[%d] = %v", i, th)
		}
	}
	prev := math.MinInt64
	for i, j := range c.Jobs {
		if j.Cluster < 0 || j.Cluster >= nc {
			return fmt.Errorf("sched: job %d targets cluster %d of %d", i, j.Cluster, nc)
		}
		if j.Arrival < 0 || j.Deadline <= j.Arrival {
			return fmt.Errorf("sched: job %d has arrival %d, deadline %d", i, j.Arrival, j.Deadline)
		}
		if j.Arrival < prev {
			return fmt.Errorf("sched: jobs are not sorted by arrival (job %d arrives at %d after %d)", i, j.Arrival, prev)
		}
		prev = j.Arrival
		if math.IsNaN(j.EnergyKWh) || math.IsInf(j.EnergyKWh, 0) || j.EnergyKWh <= 0 {
			return fmt.Errorf("sched: job %d has energy %v kWh", i, j.EnergyKWh)
		}
		if math.IsNaN(j.MinFraction) || j.MinFraction < 0 || j.MinFraction > 1 {
			return fmt.Errorf("sched: job %d has min fraction %v", i, j.MinFraction)
		}
	}
	return nil
}

// QueuedJob is the in-queue form of a job: arrival is implicit (it is
// already enqueued) and progress is tracked in served energy. The JSON
// tags are the checkpoint wire form.
type QueuedJob struct {
	Deadline    int     `json:"deadline"`
	TotalKWh    float64 `json:"total_kwh"`
	ServedKWh   float64 `json:"served_kwh"`
	MinFraction float64 `json:"min_fraction"`
}

// remaining is the unserved energy of the job.
func (j QueuedJob) remaining() float64 { return j.TotalKWh - j.ServedKWh }

// QueueState is one cluster's serialized queue, in FIFO order.
type QueueState struct {
	Jobs []QueuedJob `json:"jobs,omitempty"`
}

// Scheduler holds the per-cluster batch queues and drains them each
// step. It lives inside sim.Engine and follows the engine's
// checkpoint discipline.
//
// ckpt:state State,RestoreState
type Scheduler struct {
	maxKW      []float64 // ckpt:immutable configuration fixed at construction
	thresholds []float64 // ckpt:immutable configuration fixed at construction
	peakGuard  bool      // ckpt:immutable configuration fixed at construction
	jobs       []Job     // ckpt:immutable scenario arrival schedule fixed at construction
	// siblings[c] lists the other clusters in c's routing component in
	// ascending order; nil when migration is off.
	siblings [][]int // ckpt:immutable derived from the routing policy at construction

	// queues[c] is cluster c's FIFO of live jobs.
	queues [][]QueuedJob
	// nextJob indexes the first scenario job not yet enqueued.
	nextJob int // ckpt:derived recomputed from the step cursor on restore

	// budgetKWh and headKWh are per-step dispatch scratch: leftover
	// batch budget and peak headroom after the home pass, consumed by
	// the migration pass.
	budgetKWh []float64 // ckpt:derived per-step scratch
	headKWh   []float64 // ckpt:derived per-step scratch
}

// NewScheduler builds a scheduler for nc clusters. siblings is the
// routing-component adjacency used by migration (nil when cfg.Migrate
// is false); it is retained, not copied.
func NewScheduler(cfg *Config, nc int, siblings [][]int) (*Scheduler, error) {
	if err := cfg.Validate(nc); err != nil {
		return nil, err
	}
	if cfg.Migrate && siblings == nil {
		return nil, fmt.Errorf("sched: migration enabled without a routing component structure")
	}
	s := &Scheduler{
		maxKW:      cfg.MaxBatchKW,
		thresholds: cfg.Thresholds,
		peakGuard:  cfg.PeakGuard,
		jobs:       cfg.Jobs,
		queues:     make([][]QueuedJob, nc),
		budgetKWh:  make([]float64, nc),
		headKWh:    make([]float64, nc),
	}
	if cfg.Migrate {
		s.siblings = siblings
	}
	// Pre-size each queue for the scenario's arrivals so steady-state
	// Step never grows a queue: a cluster holds at most its total
	// scenario job count at once.
	perCluster := make([]int, nc)
	for _, j := range cfg.Jobs {
		perCluster[j.Cluster]++
	}
	for c, n := range perCluster {
		if n > 0 {
			s.queues[c] = make([]QueuedJob, 0, n)
		}
	}
	return s, nil
}

// Migratory reports whether cross-cluster migration is enabled.
func (s *Scheduler) Migratory() bool { return s.siblings != nil }

// PeakGuarded reports whether the monthly-peak guard is enabled.
func (s *Scheduler) PeakGuarded() bool { return s.peakGuard }

// Push appends a job to cluster c's queue. This is the daemon ingest
// path; it may grow the queue.
func (s *Scheduler) Push(c int, j QueuedJob) {
	s.queues[c] = append(s.queues[c], j)
}

// EnqueueArrivals pushes every scenario job with Arrival <= step that
// has not been enqueued yet. Steady-state runs call it with a
// monotonically increasing step, so each job is enqueued exactly once.
func (s *Scheduler) EnqueueArrivals(step int) {
	for s.nextJob < len(s.jobs) && s.jobs[s.nextJob].Arrival <= step {
		j := s.jobs[s.nextJob]
		s.queues[j.Cluster] = append(s.queues[j.Cluster], QueuedJob{
			Deadline:    j.Deadline,
			TotalKWh:    j.EnergyKWh,
			MinFraction: j.MinFraction,
		})
		s.nextJob++
	}
}

// QueuedKWh returns the unserved energy queued at cluster c.
func (s *Scheduler) QueuedKWh(c int) float64 {
	var kwh float64
	for _, j := range s.queues[c] {
		kwh += j.remaining()
	}
	return kwh
}

// Dispatch drains the queues for one step. decision holds the lagged
// decision price per cluster; headroomKW is the remaining distance to
// each cluster's recorded monthly peak (nil disables the peak guard for
// this step even when configured — e.g. no demand meters). It fills the
// caller's batchKW (grid power drawn by the batch class at each serving
// cluster) and shedKWh (energy abandoned at expired deadlines, at the
// home cluster) and returns nothing else; job progress is mutated in
// place. All iteration is in fixed ascending order, so the result is a
// pure function of the queue state and inputs.
func (s *Scheduler) Dispatch(step int, stepHours float64, decision, headroomKW, batchKW, shedKWh []float64) {
	for c := range batchKW {
		batchKW[c] = 0
		shedKWh[c] = 0
	}
	for c := range s.queues {
		// Expire: shed whatever is left of jobs whose deadline passed.
		q := s.queues[c]
		kept := q[:0]
		for i := range q {
			if q[i].Deadline <= step {
				shedKWh[c] += q[i].remaining()
				continue
			}
			kept = append(kept, q[i])
		}
		s.queues[c] = kept

		budget := s.maxKW[c] * stepHours
		head := math.Inf(1)
		if s.peakGuard && headroomKW != nil {
			head = headroomKW[c] * stepHours
		}

		// Urgent pass: spread each job's remaining minimum-fraction
		// obligation evenly over its remaining steps. Urgent energy
		// ignores the price gate and the peak guard (the floor is a
		// hard SLA) but still respects the batch power budget.
		q = s.queues[c]
		for i := range q {
			if budget <= 0 {
				break
			}
			j := &q[i]
			need := j.MinFraction*j.TotalKWh - j.ServedKWh
			if need <= 0 {
				continue
			}
			steps := float64(j.Deadline - step) // >= 1 after expiry
			amount := need / steps
			if amount > budget {
				amount = budget
			}
			serve(j, amount)
			batchKW[c] += amount / stepHours
			budget -= amount
			head -= amount
		}

		// Price-gated home pass: while the decision price is at or
		// below the threshold, drain the queue FIFO within budget and
		// peak headroom.
		if decision[c] <= s.thresholds[c] {
			avail := budget
			if head < avail {
				avail = head
			}
			for i := range q {
				if avail <= 0 {
					break
				}
				j := &q[i]
				amount := j.remaining()
				if amount <= 0 {
					continue
				}
				if amount > avail {
					amount = avail
				}
				serve(j, amount)
				batchKW[c] += amount / stepHours
				avail -= amount
				budget -= amount
				head -= amount
			}
		}
		s.budgetKWh[c] = budget
		s.headKWh[c] = head
	}

	// Migration pass: clusters whose price gate is shut push queued
	// energy to cheaper siblings with spare budget and headroom. The
	// energy is drawn (and billed, and metered) at the serving cluster;
	// the job itself never leaves its home queue, which keeps the
	// per-cluster checkpoint scatter disjoint.
	if s.siblings == nil {
		return
	}
	for c := range s.queues {
		if decision[c] <= s.thresholds[c] {
			continue // home gate was open; leftovers already had their chance
		}
		q := s.queues[c]
		for _, t := range s.siblings[c] {
			if decision[t] > s.thresholds[t] {
				continue
			}
			avail := s.budgetKWh[t]
			if s.headKWh[t] < avail {
				avail = s.headKWh[t]
			}
			if avail <= 0 {
				continue
			}
			for i := range q {
				if avail <= 0 {
					break
				}
				j := &q[i]
				amount := j.remaining()
				if amount <= 0 {
					continue
				}
				if amount > avail {
					amount = avail
				}
				serve(j, amount)
				batchKW[t] += amount / stepHours
				avail -= amount
				s.budgetKWh[t] -= amount
				s.headKWh[t] -= amount
			}
		}
	}
}

// serve credits amount kWh against j, snapping to exactly TotalKWh when
// the job completes so float residue never leaves a phantom job queued.
func serve(j *QueuedJob, amount float64) {
	if amount >= j.remaining() {
		j.ServedKWh = j.TotalKWh
		return
	}
	j.ServedKWh += amount
}

// Compact drops completed jobs from every queue, preserving FIFO order
// of the survivors. The engine calls it once per step after dispatch so
// checkpoints never carry finished jobs.
func (s *Scheduler) Compact() {
	for c := range s.queues {
		q := s.queues[c]
		kept := q[:0]
		for i := range q {
			if q[i].ServedKWh < q[i].TotalKWh {
				kept = append(kept, q[i])
			}
		}
		s.queues[c] = kept
	}
}

// State serializes every queue for a checkpoint, in cluster order.
func (s *Scheduler) State() []QueueState {
	out := make([]QueueState, len(s.queues))
	for c, q := range s.queues {
		out[c].Jobs = append([]QueuedJob(nil), q...)
	}
	return out
}

// RestoreState loads serialized queues, validating them against the
// restored step cursor, and re-derives the scenario arrival cursor.
func (s *Scheduler) RestoreState(states []QueueState, stepsRun int) error {
	if len(states) != len(s.queues) {
		return fmt.Errorf("sched: %d queue states for %d clusters", len(states), len(s.queues))
	}
	for c, st := range states {
		for i, j := range st.Jobs {
			if j.Deadline < stepsRun {
				return fmt.Errorf("sched: queue %d job %d has deadline %d behind step cursor %d", c, i, j.Deadline, stepsRun)
			}
			if math.IsNaN(j.TotalKWh) || math.IsInf(j.TotalKWh, 0) || j.TotalKWh <= 0 {
				return fmt.Errorf("sched: queue %d job %d has total %v kWh", c, i, j.TotalKWh)
			}
			if math.IsNaN(j.ServedKWh) || j.ServedKWh < 0 || j.ServedKWh >= j.TotalKWh {
				return fmt.Errorf("sched: queue %d job %d has served %v of %v kWh", c, i, j.ServedKWh, j.TotalKWh)
			}
			if math.IsNaN(j.MinFraction) || j.MinFraction < 0 || j.MinFraction > 1 {
				return fmt.Errorf("sched: queue %d job %d has min fraction %v", c, i, j.MinFraction)
			}
		}
		s.queues[c] = append(s.queues[c][:0], st.Jobs...)
	}
	// Scenario jobs with Arrival < stepsRun were consumed before the
	// checkpoint; the cursor resumes at the first later arrival.
	s.nextJob = 0
	for s.nextJob < len(s.jobs) && s.jobs[s.nextJob].Arrival < stepsRun {
		s.nextJob++
	}
	return nil
}
