package routing

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"powerroute/internal/cluster"
)

// testFleet builds the standard nine-cluster fleet with uniform state peaks.
func testFleet(t *testing.T) *cluster.Fleet {
	t.Helper()
	peaks := make([]float64, 51)
	for i := range peaks {
		peaks[i] = 20000
	}
	f, err := cluster.DeriveFleet(peaks, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// mkContext builds a routing context with uniform demand and room equal to
// capacity (relaxed constraints).
func mkContext(f *cluster.Fleet, demandPerState float64, prices []float64) *Context {
	ns, nc := len(f.States), len(f.Clusters)
	ctx := &Context{
		Demand:         make([]float64, ns),
		DecisionPrices: make([]float64, nc),
		Room:           make([]float64, nc),
		BurstRoom:      make([]float64, nc),
	}
	for s := range ctx.Demand {
		ctx.Demand[s] = demandPerState
	}
	copy(ctx.DecisionPrices, prices)
	for c, cl := range f.Clusters {
		ctx.Room[c] = float64(cl.Capacity)
	}
	return ctx
}

func mkAssign(f *cluster.Fleet) [][]float64 {
	assign := make([][]float64, len(f.States))
	for s := range assign {
		assign[s] = make([]float64, len(f.Clusters))
	}
	return assign
}

// totalAssigned sums an assignment and verifies conservation per state.
func totalAssigned(t *testing.T, ctx *Context, assign [][]float64) float64 {
	t.Helper()
	total := 0.0
	for s := range assign {
		row := 0.0
		for _, v := range assign[s] {
			if v < 0 {
				t.Fatalf("state %d: negative assignment", s)
			}
			row += v
		}
		if math.Abs(row-ctx.Demand[s]) > 1e-6*(1+ctx.Demand[s]) {
			t.Fatalf("state %d: assigned %v of demand %v", s, row, ctx.Demand[s])
		}
		total += row
	}
	return total
}

func flatPrices(n int, v float64) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = v
	}
	return p
}

func TestBaselineConservesDemand(t *testing.T) {
	f := testFleet(t)
	b := NewBaseline(f)
	ctx := mkContext(f, 1000, flatPrices(len(f.Clusters), 50))
	assign := mkAssign(f)
	if err := b.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	totalAssigned(t, ctx, assign)
	if b.Name() != "akamai-baseline" {
		t.Errorf("Name = %q", b.Name())
	}
}

func TestBaselineLocality(t *testing.T) {
	f := testFleet(t)
	b := NewBaseline(f)
	ctx := mkContext(f, 1000, flatPrices(len(f.Clusters), 50))
	assign := mkAssign(f)
	if err := b.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	// Massachusetts traffic flows mostly to the Boston cluster.
	var ma int
	for i, st := range f.States {
		if st.Code == "MA" {
			ma = i
		}
	}
	bos, _ := f.Index("MA")
	if assign[ma][bos] < 500 {
		t.Errorf("MA→Boston = %v of 1000, want the majority", assign[ma][bos])
	}
}

func TestBaselineIgnoresPrices(t *testing.T) {
	f := testFleet(t)
	b := NewBaseline(f)
	cheap := flatPrices(len(f.Clusters), 50)
	cheap[0] = 1 // make one cluster dramatically cheaper
	a1 := mkAssign(f)
	a2 := mkAssign(f)
	ctx1 := mkContext(f, 1000, flatPrices(len(f.Clusters), 50))
	ctx2 := mkContext(f, 1000, cheap)
	if err := b.Allocate(ctx1, a1); err != nil {
		t.Fatal(err)
	}
	if err := b.Allocate(ctx2, a2); err != nil {
		t.Fatal(err)
	}
	for s := range a1 {
		for c := range a1[s] {
			if a1[s][c] != a2[s][c] {
				t.Fatal("baseline allocation moved with prices")
			}
		}
	}
}

func TestBaselineSpillsWhenFull(t *testing.T) {
	f := testFleet(t)
	b := NewBaseline(f)
	ctx := mkContext(f, 1000, flatPrices(len(f.Clusters), 50))
	// Choke the Boston cluster.
	bos, _ := f.Index("MA")
	ctx.Room[bos] = 10
	assign := mkAssign(f)
	if err := b.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	totalAssigned(t, ctx, assign)
	// Total Boston load stays within its room.
	var bosLoad float64
	for s := range assign {
		bosLoad += assign[s][bos]
	}
	if bosLoad > 10+1e-9 {
		t.Errorf("Boston load %v exceeds room 10", bosLoad)
	}
}

func TestOptimizerPrefersCheapest(t *testing.T) {
	f := testFleet(t)
	// Continental threshold: pure price routing.
	p, err := NewPriceOptimizer(f, 5000, DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	prices := flatPrices(len(f.Clusters), 80)
	il, _ := f.Index("IL")
	prices[il] = 20 // Chicago far cheaper
	ctx := mkContext(f, 1000, prices)
	assign := mkAssign(f)
	if err := p.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	totalAssigned(t, ctx, assign)
	var ilLoad, total float64
	for s := range assign {
		for c := range assign[s] {
			total += assign[s][c]
			if c == il {
				ilLoad += assign[s][c]
			}
		}
	}
	// Chicago absorbs everything up to its capacity, except demand from
	// states with no cluster in range even at 5000 km (Hawaii's fallback
	// pins it to California).
	wantIL := math.Min(float64(f.Clusters[il].Capacity), total-1000)
	if ilLoad < wantIL-1e-6 {
		t.Errorf("Chicago load = %v, want ≥ %v (cheapest-first)", ilLoad, wantIL)
	}
}

func TestOptimizerRespectsDistanceThreshold(t *testing.T) {
	f := testFleet(t)
	p, err := NewPriceOptimizer(f, 500, DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	prices := flatPrices(len(f.Clusters), 80)
	ca1, _ := f.Index("CA1")
	prices[ca1] = 1 // California nearly free
	ctx := mkContext(f, 1000, prices)
	assign := mkAssign(f)
	if err := p.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	totalAssigned(t, ctx, assign)
	// Massachusetts (far beyond 500 km of CA1) must not chase the price.
	var ma int
	for i, st := range f.States {
		if st.Code == "MA" {
			ma = i
		}
	}
	if assign[ma][ca1] != 0 {
		t.Errorf("MA sent %v to California despite 500 km threshold", assign[ma][ca1])
	}
}

func TestOptimizerDeadBandPrefersProximity(t *testing.T) {
	f := testFleet(t)
	p, err := NewPriceOptimizer(f, 5000, 5)
	if err != nil {
		t.Fatal(err)
	}
	// All prices within $5 of each other: distance decides, so MA load
	// stays in Boston even though NJ is $3 cheaper.
	prices := flatPrices(len(f.Clusters), 50)
	nj, _ := f.Index("NJ")
	bos, _ := f.Index("MA")
	prices[nj] = 47
	ctx := mkContext(f, 1000, prices)
	assign := mkAssign(f)
	if err := p.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	var ma int
	for i, st := range f.States {
		if st.Code == "MA" {
			ma = i
		}
	}
	if assign[ma][bos] < 999 {
		t.Errorf("MA→Boston = %v; $3 differential should be ignored (dead band)", assign[ma][bos])
	}
	// Beyond the dead band the cheaper cluster wins.
	prices[nj] = 40
	ctx = mkContext(f, 1000, prices)
	assign = mkAssign(f)
	if err := p.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	if assign[ma][nj] < 999 {
		t.Errorf("MA→NJ = %v; $10 differential should move traffic", assign[ma][nj])
	}
}

func TestOptimizerWalksToNextWhenFull(t *testing.T) {
	f := testFleet(t)
	p, err := NewPriceOptimizer(f, 5000, 5)
	if err != nil {
		t.Fatal(err)
	}
	prices := flatPrices(len(f.Clusters), 80)
	il, _ := f.Index("IL")
	va, _ := f.Index("VA")
	prices[il] = 20
	prices[va] = 30
	ctx := mkContext(f, 1000, prices)
	ctx.Room[il] = 5000 // tiny room at the cheapest
	assign := mkAssign(f)
	if err := p.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	totalAssigned(t, ctx, assign)
	var ilLoad, vaLoad float64
	for s := range assign {
		ilLoad += assign[s][il]
		vaLoad += assign[s][va]
	}
	if ilLoad > 5000+1e-9 {
		t.Errorf("Chicago overfilled: %v", ilLoad)
	}
	if vaLoad < 20000 {
		t.Errorf("Virginia (next cheapest) got %v, want the bulk", vaLoad)
	}
}

func TestOptimizerBurstTier(t *testing.T) {
	f := testFleet(t)
	p, err := NewPriceOptimizer(f, 5000, 5)
	if err != nil {
		t.Fatal(err)
	}
	prices := flatPrices(len(f.Clusters), 50)
	ctx := mkContext(f, 1000, prices)
	// Preferred rooms too small for total demand; burst room makes up.
	for c := range ctx.Room {
		ctx.BurstRoom[c] = ctx.Room[c]
		ctx.Room[c] = 3000
	}
	assign := mkAssign(f)
	if err := p.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	totalAssigned(t, ctx, assign)
}

func TestOptimizerStrandedFallback(t *testing.T) {
	// Alaska's candidates (nearest cluster) may be full; demand must walk
	// to other clusters rather than vanish or overload.
	f := testFleet(t)
	p, err := NewPriceOptimizer(f, 100, 5) // tiny threshold: fallback paths everywhere
	if err != nil {
		t.Fatal(err)
	}
	prices := flatPrices(len(f.Clusters), 50)
	ctx := mkContext(f, 1000, prices)
	ca1, _ := f.Index("CA1")
	ca2, _ := f.Index("CA2")
	ctx.Room[ca1] = 0
	ctx.Room[ca2] = 0
	assign := mkAssign(f)
	if err := p.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	totalAssigned(t, ctx, assign)
	var ak int
	for i, st := range f.States {
		if st.Code == "AK" {
			ak = i
		}
	}
	if assign[ak][ca1]+assign[ak][ca2] != 0 {
		t.Error("Alaska assigned to full California clusters")
	}
}

func TestOptimizerConstructorErrors(t *testing.T) {
	f := testFleet(t)
	if _, err := NewPriceOptimizer(f, -1, 5); err == nil {
		t.Error("negative distance should fail")
	}
	if _, err := NewPriceOptimizer(f, 100, -5); err == nil {
		t.Error("negative price threshold should fail")
	}
	p, _ := NewPriceOptimizer(f, 1500, 5)
	if p.ThresholdKm() != 1500 {
		t.Error("ThresholdKm wrong")
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestAllToOne(t *testing.T) {
	f := testFleet(t)
	il, _ := f.Index("IL")
	a, err := NewAllToOne(f, il)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "static-IL" {
		t.Errorf("Name = %q", a.Name())
	}
	ctx := mkContext(f, 1000, flatPrices(len(f.Clusters), 50))
	// Give the target unbounded room so everything fits.
	ctx.Room[il] = 1e12
	assign := mkAssign(f)
	if err := a.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	total := totalAssigned(t, ctx, assign)
	var ilLoad float64
	for s := range assign {
		ilLoad += assign[s][il]
	}
	if math.Abs(ilLoad-total) > 1e-6 {
		t.Errorf("static policy leaked load: %v of %v at target", ilLoad, total)
	}
	if _, err := NewAllToOne(f, -1); err == nil {
		t.Error("negative target should fail")
	}
	if _, err := NewAllToOne(f, 99); err == nil {
		t.Error("out-of-range target should fail")
	}
}

func TestValidateDimensions(t *testing.T) {
	f := testFleet(t)
	b := NewBaseline(f)
	ctx := mkContext(f, 1000, flatPrices(len(f.Clusters), 50))
	bad := mkAssign(f)[:10]
	if err := b.Allocate(ctx, bad); err == nil {
		t.Error("short assign matrix should fail")
	}
	ctx.Demand = ctx.Demand[:5]
	if err := b.Allocate(ctx, mkAssign(f)); err == nil {
		t.Error("short demand should fail")
	}
	ctx = mkContext(f, 1000, flatPrices(len(f.Clusters), 50))
	ctx.DecisionPrices = ctx.DecisionPrices[:3]
	if err := b.Allocate(ctx, mkAssign(f)); err == nil {
		t.Error("short prices should fail")
	}
	ctx = mkContext(f, 1000, flatPrices(len(f.Clusters), 50))
	ctx.Room = ctx.Room[:2]
	if err := b.Allocate(ctx, mkAssign(f)); err == nil {
		t.Error("short room should fail")
	}
}

func TestZeroDemandSkipped(t *testing.T) {
	f := testFleet(t)
	p, _ := NewPriceOptimizer(f, 1500, 5)
	ctx := mkContext(f, 0, flatPrices(len(f.Clusters), 50))
	assign := mkAssign(f)
	if err := p.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	for s := range assign {
		for c := range assign[s] {
			if assign[s][c] != 0 {
				t.Fatal("zero demand produced assignments")
			}
		}
	}
}

func TestApplyPriceCaps(t *testing.T) {
	prices := []float64{30, 80, 120, 50}
	caps := []float64{math.Inf(1), 60, 120, 40}
	ApplyPriceCaps(prices, caps)
	want := []float64{30, 60, 120, 40}
	for i := range want {
		if prices[i] != want[i] {
			t.Errorf("prices[%d] = %v, want %v", i, prices[i], want[i])
		}
	}
	// A short caps vector leaves the uncovered tail untouched.
	prices = []float64{10, 20}
	ApplyPriceCaps(prices, []float64{5})
	if prices[0] != 5 || prices[1] != 20 {
		t.Errorf("short caps: prices = %v, want [5 20]", prices)
	}
}

// TestPreferenceOrderMatchesStableSort cross-checks the hand-rolled
// insertion sort in preferenceOrder against sort.SliceStable with the same
// comparator, over randomized prices with deliberate ties — the hot-path
// rewrite must be permutation-identical, since routing determinism (and
// the byte-identical experiment registry) depends on it.
func TestPreferenceOrderMatchesStableSort(t *testing.T) {
	fleet := testFleet(t)
	opt, err := NewPriceOptimizer(fleet, 2500, DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	nc := len(fleet.Clusters)
	rng := rand.New(rand.NewSource(99))
	prices := make([]float64, nc)
	for trial := 0; trial < 200; trial++ {
		for c := range prices {
			// Coarse quantization forces frequent price ties so the
			// stability tiebreak (distance) is actually exercised.
			prices[c] = 20 + 5*float64(rng.Intn(8))
		}
		for s := range fleet.States {
			got := opt.preferenceOrder(s, prices, nil)

			cands := opt.candidates[s]
			pmin := prices[cands[0]]
			for _, c := range cands[1:] {
				if prices[c] < pmin {
					pmin = prices[c]
				}
			}
			cutoff := pmin + opt.priceThreshold
			var want []int
			for _, c := range cands {
				if prices[c] <= cutoff {
					want = append(want, c)
				}
			}
			head := len(want)
			for _, c := range cands {
				if prices[c] > cutoff {
					want = append(want, c)
				}
			}
			rest := want[head:]
			dist := fleet.DistanceKm[s]
			sort.SliceStable(rest, func(i, j int) bool {
				if prices[rest[i]] != prices[rest[j]] {
					return prices[rest[i]] < prices[rest[j]]
				}
				return dist[rest[i]] < dist[rest[j]]
			})
			if !slices.Equal(got, want) {
				t.Fatalf("trial %d state %d: order %v, stable-sort reference %v (prices %v)",
					trial, s, got, want, prices)
			}
		}
	}
}
