package routing

import (
	"math"
	"testing"
)

func TestJointOptimizerExtremes(t *testing.T) {
	f := testFleet(t)
	prices := flatPrices(len(f.Clusters), 80)
	il, _ := f.Index("IL")
	prices[il] = 20

	// Weight 0: pure price routing — everything in reach piles onto the
	// cheapest cluster, exactly like the price optimizer without bounds.
	j0, err := NewJointOptimizer(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := mkContext(f, 1000, prices)
	assign := mkAssign(f)
	if err := j0.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	total := totalAssigned(t, ctx, assign)
	var ilLoad float64
	for s := range assign {
		ilLoad += assign[s][il]
	}
	want := math.Min(float64(f.Clusters[il].Capacity), total)
	if math.Abs(ilLoad-want) > 1e-6*want {
		t.Errorf("w=0: Chicago load %v, want %v", ilLoad, want)
	}

	// Huge weight: proximity routing — Massachusetts stays in Boston no
	// matter the price.
	jInf, err := NewJointOptimizer(f, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	ctx = mkContext(f, 1000, prices)
	assign = mkAssign(f)
	if err := jInf.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	totalAssigned(t, ctx, assign)
	var ma int
	for i, st := range f.States {
		if st.Code == "MA" {
			ma = i
		}
	}
	bos, _ := f.Index("MA")
	if assign[ma][bos] < 999 {
		t.Errorf("w=inf: MA→Boston %v, want all", assign[ma][bos])
	}
}

func TestJointOptimizerTradesOff(t *testing.T) {
	f := testFleet(t)
	prices := flatPrices(len(f.Clusters), 80)
	il, _ := f.Index("IL")
	prices[il] = 30 // $50 cheaper than everywhere else

	var ma int
	for i, st := range f.States {
		if st.Code == "MA" {
			ma = i
		}
	}
	// MA→IL is ~1350 km farther than MA→Boston. At w=0.01 the detour
	// costs ~$13.5-equivalent against a $50 price edge: go. At w=0.1 it
	// costs ~$135: stay.
	for _, c := range []struct {
		w    float64
		toIL bool
	}{
		{0.01, true},
		{0.1, false},
	} {
		j, err := NewJointOptimizer(f, c.w)
		if err != nil {
			t.Fatal(err)
		}
		ctx := mkContext(f, 1000, prices)
		assign := mkAssign(f)
		if err := j.Allocate(ctx, assign); err != nil {
			t.Fatal(err)
		}
		wentIL := assign[ma][il] > 500
		if wentIL != c.toIL {
			t.Errorf("w=%v: MA→IL=%v, want %v", c.w, assign[ma][il], c.toIL)
		}
	}
}

func TestJointOptimizerRespectsRoom(t *testing.T) {
	f := testFleet(t)
	prices := flatPrices(len(f.Clusters), 80)
	il, _ := f.Index("IL")
	prices[il] = 20
	j, _ := NewJointOptimizer(f, 0)
	ctx := mkContext(f, 1000, prices)
	ctx.Room[il] = 2000
	assign := mkAssign(f)
	if err := j.Allocate(ctx, assign); err != nil {
		t.Fatal(err)
	}
	totalAssigned(t, ctx, assign)
	var ilLoad float64
	for s := range assign {
		ilLoad += assign[s][il]
	}
	if ilLoad > 2000+1e-9 {
		t.Errorf("room violated: %v", ilLoad)
	}
}

func TestJointOptimizerValidation(t *testing.T) {
	f := testFleet(t)
	if _, err := NewJointOptimizer(f, -1); err == nil {
		t.Error("negative weight should fail")
	}
	j, _ := NewJointOptimizer(f, 0.05)
	if j.DistanceWeight() != 0.05 {
		t.Error("DistanceWeight wrong")
	}
	if j.Name() == "" {
		t.Error("empty name")
	}
	ctx := mkContext(f, 1000, flatPrices(len(f.Clusters), 50))
	if err := j.Allocate(ctx, mkAssign(f)[:3]); err == nil {
		t.Error("short assign should fail")
	}
	ctx.Demand = ctx.Demand[:4]
	if err := j.Allocate(ctx, mkAssign(f)); err == nil {
		t.Error("short demand should fail")
	}
	ctx = mkContext(f, 1000, flatPrices(len(f.Clusters), 50))
	ctx.Room = nil
	if err := j.Allocate(ctx, mkAssign(f)); err == nil {
		t.Error("missing room should fail")
	}
}

func TestJointOptimizerOrderCache(t *testing.T) {
	f := testFleet(t)
	j, _ := NewJointOptimizer(f, 0.01)
	prices := flatPrices(len(f.Clusters), 50)
	ctx := mkContext(f, 100, prices)
	a1 := mkAssign(f)
	if err := j.Allocate(ctx, a1); err != nil {
		t.Fatal(err)
	}
	// Same prices: cached orders give the identical allocation.
	ctx2 := mkContext(f, 100, prices)
	a2 := mkAssign(f)
	if err := j.Allocate(ctx2, a2); err != nil {
		t.Fatal(err)
	}
	for s := range a1 {
		for c := range a1[s] {
			if a1[s][c] != a2[s][c] {
				t.Fatal("cached allocation differs")
			}
		}
	}
	// Changed prices invalidate the cache and change the allocation.
	prices2 := flatPrices(len(f.Clusters), 50)
	il, _ := f.Index("IL")
	prices2[il] = 1
	ctx3 := mkContext(f, 100, prices2)
	a3 := mkAssign(f)
	if err := j.Allocate(ctx3, a3); err != nil {
		t.Fatal(err)
	}
	same := true
	for s := range a1 {
		for c := range a1[s] {
			if a1[s][c] != a3[s][c] {
				same = false
			}
		}
	}
	if same {
		t.Error("price change did not affect allocation")
	}
}
