package routing

import (
	"errors"
	"fmt"
	"sort"
)

// JointOptimizer implements the §8 "Implementing Joint Optimization"
// direction: instead of a hard distance threshold with price tie-breaking,
// it minimizes a weighted objective per unit of traffic,
//
//	score(state, cluster) = price($/MWh) + DistanceWeight · distance(km)
//
// folding the performance goal into the optimization itself the way
// existing traffic-engineering frameworks fold bandwidth and reliability.
// DistanceWeight is the operator's exchange rate between a kilometer of
// client distance and a dollar per MWh of energy price: 0 recovers pure
// price chasing, large values recover proximity routing.
type JointOptimizer struct {
	fleet          fleetLike
	distanceWeight float64
	nearest        [][]int

	lastPrices []float64
	orders     [][]int
	scores     []float64
}

// fleetLike is the slice of cluster.Fleet the optimizer needs; it keeps
// the joint optimizer testable with small fixtures.
type fleetLike interface {
	StateCount() int
	ClusterCount() int
	Distance(state, cluster int) float64
}

// NewJointOptimizer builds the weighted-objective policy.
func NewJointOptimizer(f fleetLike, distanceWeight float64) (*JointOptimizer, error) {
	if distanceWeight < 0 {
		return nil, errors.New("routing: negative distance weight")
	}
	j := &JointOptimizer{
		fleet:          f,
		distanceWeight: distanceWeight,
		nearest:        make([][]int, f.StateCount()),
	}
	for s := 0; s < f.StateCount(); s++ {
		order := make([]int, f.ClusterCount())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return f.Distance(s, order[a]) < f.Distance(s, order[b])
		})
		j.nearest[s] = order
	}
	return j, nil
}

// Name implements Policy.
func (j *JointOptimizer) Name() string {
	return fmt.Sprintf("joint-optimizer(w=%.3g$/km)", j.distanceWeight)
}

// DistanceWeight returns the configured exchange rate.
func (j *JointOptimizer) DistanceWeight() float64 { return j.distanceWeight }

// Allocate implements Policy: states fill clusters in ascending score
// order, falling back through the score ranking as clusters fill.
func (j *JointOptimizer) Allocate(ctx *Context, assign [][]float64) error {
	ns, nc := j.fleet.StateCount(), j.fleet.ClusterCount()
	if len(ctx.Demand) != ns {
		return fmt.Errorf("routing: %d demands for %d states", len(ctx.Demand), ns)
	}
	if len(ctx.DecisionPrices) != nc || len(ctx.Room) != nc || len(ctx.BurstRoom) != nc {
		return errors.New("routing: context dimensions wrong")
	}
	if len(assign) != ns {
		return fmt.Errorf("routing: assign has %d rows, want %d", len(assign), ns)
	}
	j.refreshOrders(ctx.DecisionPrices)
	for s, demand := range ctx.Demand {
		if demand <= 0 {
			continue
		}
		left := fill(j.orders[s], demand, ctx, assign[s])
		if left > 0 {
			assign[s][j.nearest[s][0]] += left
		}
	}
	return nil
}

// refreshOrders recomputes the score-sorted cluster orders when prices
// change (prices change hourly; 5-minute runs reuse the cache).
func (j *JointOptimizer) refreshOrders(prices []float64) {
	if j.orders != nil && equalPrices(j.lastPrices, prices) {
		return
	}
	ns, nc := j.fleet.StateCount(), j.fleet.ClusterCount()
	if j.orders == nil {
		j.orders = make([][]int, ns)
		for s := range j.orders {
			j.orders[s] = make([]int, nc)
		}
		j.lastPrices = make([]float64, nc)
		j.scores = make([]float64, nc)
	}
	for s := 0; s < ns; s++ {
		order := j.orders[s]
		for c := 0; c < nc; c++ {
			order[c] = c
			j.scores[c] = prices[c] + j.distanceWeight*j.fleet.Distance(s, c)
		}
		scores := j.scores
		sort.Slice(order, func(a, b int) bool {
			if scores[order[a]] != scores[order[b]] {
				return scores[order[a]] < scores[order[b]]
			}
			return j.fleet.Distance(s, order[a]) < j.fleet.Distance(s, order[b])
		})
	}
	copy(j.lastPrices, prices)
}
