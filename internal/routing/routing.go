// Package routing implements the request-routing policies the paper
// simulates (§6.1):
//
//   - Baseline: an Akamai-like proximity assignment with stable per-state
//     affinity weights, the cost reference all savings are measured against.
//   - PriceOptimizer: the paper's distance-constrained electricity price
//     optimizer — map each client to the cheapest cluster within a radial
//     distance threshold, ignore differentials below a price threshold
//     ($5/MWh), and walk to the next-best cluster when capacity or the 95/5
//     boundary is near.
//   - AllToOne: the static "move all servers to the cheapest market"
//     comparison of §6.3 (Fig 18).
//
// Policies allocate per-state demand onto clusters through a two-tier room
// model: preferred room (under the 95/5 soft cap) and burst room (between
// the cap and physical capacity, usable only while the billing burst budget
// lasts). The simulation engine owns the tier bookkeeping; policies just
// honor it.
package routing

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"time"

	"powerroute/internal/cluster"
)

// DefaultPriceThreshold is the dead-band under which price differentials
// are ignored (§6.1: "we use $5/MWh").
const DefaultPriceThreshold = 5.0

// Context carries one decision step's inputs.
type Context struct {
	At time.Time
	// Demand is the per-state demand in hits/s.
	Demand []float64
	// DecisionPrices is the per-cluster price the router believes ($/MWh).
	// With a reaction delay these are stale relative to the billing prices
	// (§6.4).
	DecisionPrices []float64
	// Room is each cluster's remaining preferred allocation (under the
	// 95/5 cap and capacity). Mutated by Allocate.
	Room []float64
	// BurstRoom is each cluster's additional room above the 95/5 cap up to
	// physical capacity; zero when bursting is not allowed this interval.
	// Mutated by Allocate.
	BurstRoom []float64
}

// Policy maps demand onto clusters.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Allocate fills assign[state][cluster] (pre-zeroed, dimensions
	// states×clusters) with hit rates, consuming Room/BurstRoom.
	Allocate(ctx *Context, assign [][]float64) error
}

// Sharder is a Policy that can be split across disjoint cluster regions
// (one powerrouted instance per electricity market region). Candidates
// names the clusters a state is assigned to in normal operation; a
// partition is routing-closed when every state's candidates live in the
// same shard as the state, so the shard's allocations reproduce the joint
// run's exactly. ShardPolicy rebuilds the equivalent policy over a
// sub-fleet carved out by cluster.Fleet.Subfleet.
type Sharder interface {
	Policy
	// Candidates returns the clusters state s may be assigned to in
	// normal (non-saturated) operation, in no particular order. Callers
	// must not mutate the returned slice.
	Candidates(s int) []int
	// ShardPolicy builds this policy's equivalent over a sub-fleet.
	ShardPolicy(sub *cluster.Fleet) (Policy, error)
}

// validate sanity-checks dimensions shared by all policies.
func validate(f *cluster.Fleet, ctx *Context, assign [][]float64) error {
	ns, nc := len(f.States), len(f.Clusters)
	if len(ctx.Demand) != ns {
		return fmt.Errorf("routing: %d demands for %d states", len(ctx.Demand), ns)
	}
	if len(ctx.DecisionPrices) != nc {
		return fmt.Errorf("routing: %d prices for %d clusters", len(ctx.DecisionPrices), nc)
	}
	if len(ctx.Room) != nc || len(ctx.BurstRoom) != nc {
		return fmt.Errorf("routing: room vectors sized %d/%d, want %d", len(ctx.Room), len(ctx.BurstRoom), nc)
	}
	if len(assign) != ns {
		return fmt.Errorf("routing: assign has %d rows, want %d", len(assign), ns)
	}
	return nil
}

// fill assigns demand to clusters in the given preference order, consuming
// preferred room first and burst room second. It returns the demand it
// could not place.
func fill(order []int, demand float64, ctx *Context, row []float64) float64 {
	remaining := demand
	for _, c := range order {
		if remaining <= 0 {
			return 0
		}
		take := ctx.Room[c]
		if take > remaining {
			take = remaining
		}
		if take > 0 {
			row[c] += take
			ctx.Room[c] -= take
			remaining -= take
		}
	}
	for _, c := range order {
		if remaining <= 0 {
			return 0
		}
		take := ctx.BurstRoom[c]
		if take > remaining {
			take = remaining
		}
		if take > 0 {
			row[c] += take
			ctx.BurstRoom[c] -= take
			remaining -= take
		}
	}
	return remaining
}

// Baseline is the Akamai-like reference policy: stable affinity weights per
// state (§6.1 "we used statistics of how Akamai routed clients to model an
// Akamai-like router"), with overflow spilling to the nearest cluster with
// room.
type Baseline struct {
	fleet   *cluster.Fleet
	weights [][]float64
	nearest [][]int // distance-ordered cluster indices per state
}

// NewBaseline precomputes the affinity weights for a fleet.
func NewBaseline(f *cluster.Fleet) *Baseline {
	b := &Baseline{
		fleet:   f,
		weights: make([][]float64, len(f.States)),
		nearest: make([][]int, len(f.States)),
	}
	for s := range f.States {
		b.weights[s] = f.AffinityWeights(s)
		b.nearest[s] = distanceOrder(f, s)
	}
	return b
}

// Name implements Policy.
func (b *Baseline) Name() string { return "akamai-baseline" }

// Allocate implements Policy.
func (b *Baseline) Allocate(ctx *Context, assign [][]float64) error {
	if err := validate(b.fleet, ctx, assign); err != nil {
		return err
	}
	for s, demand := range ctx.Demand {
		if demand <= 0 {
			continue
		}
		row := assign[s]
		spill := 0.0
		for c, w := range b.weights[s] {
			if w == 0 {
				continue
			}
			want := w * demand
			take := ctx.Room[c]
			if take > want {
				take = want
			}
			if take > 0 {
				row[c] += take
				ctx.Room[c] -= take
			}
			spill += want - take
		}
		if spill > 0 {
			if left := fill(b.nearest[s], spill, ctx, row); left > 0 {
				// Fleet saturated: overload the nearest cluster; the engine
				// clamps utilization and reports the excess.
				row[b.nearest[s][0]] += left
			}
		}
	}
	return nil
}

// Weights exposes the per-state affinity weights (diagnostics and the
// synthetic Akamai-like router of §6.3).
func (b *Baseline) Weights(state int) []float64 {
	return b.weights[state]
}

// Candidates implements Sharder: the clusters carrying nonzero affinity
// weight for the state (its normal-operation assignment support).
func (b *Baseline) Candidates(s int) []int {
	var out []int
	for c, w := range b.weights[s] {
		if w > 0 {
			out = append(out, c)
		}
	}
	return out
}

// ShardPolicy implements Sharder. The sub-fleet's affinity weights equal
// the full fleet's restricted to its clusters exactly when each owned
// state's weight support is owned — the routing-closure condition the
// shard split validates.
func (b *Baseline) ShardPolicy(sub *cluster.Fleet) (Policy, error) {
	return NewBaseline(sub), nil
}

// PriceOptimizer is the paper's distance-constrained electricity price
// optimizer (§6.1).
type PriceOptimizer struct {
	fleet          *cluster.Fleet
	thresholdKm    float64
	priceThreshold float64
	candidates     [][]int // per state, distance-sorted (with <50km fallback)
	nearest        [][]int // per state, all clusters by distance (spill order)

	// Decision prices only change hourly while 5-minute runs allocate 12
	// times per hour, so preference orders are cached until the price
	// vector changes. Policies are not goroutine-safe; the engine runs one
	// policy per scenario.
	lastPrices []float64
	orders     [][]int

	// Shared-set rebuild state (fleets of ≤ 64 clusters): states with the
	// same candidate set share one dead-band cutoff and one price-sorted
	// tail, so a price change is resolved once per distinct set instead of
	// once per state. The per-state work left is a bitmask filter over the
	// candidate list plus a copy of the shared tail. All slices below are
	// preallocated scratch reused across refreshes.
	candMask   []uint64 // per state: candidate clusters as a bitmask
	setOf      []int    // per state: index into the distinct-set tables
	setMasks   []uint64 // per distinct candidate set: its bitmask
	setMembers [][]int  // per distinct candidate set: its clusters in ascending index order
	maxMaskC   int      // cluster count the bitmasks were built for
	setCheap   []uint64 // scratch per set: clusters within the dead-band of the set minimum
	setRest    [][]int  // scratch per set: clusters beyond the dead-band, by ascending price
	setTied    []bool   // scratch per set: equal prices in the tail need per-state distance tie-breaks
	firstPick  []int    // scratch per state: first candidate in the dead-band tier (-1 when the set is tied)
	// setsValid reports that the set tables above reflect lastPrices, so
	// Allocate can route straight off them (dead-band members in the
	// state's own candidate order, then the shared tail) without ever
	// materializing per-state preference orders. Tied sets are the
	// exception: their states' orders are rebuilt per refresh and walked
	// the classic way.
	setsValid bool
}

// NewPriceOptimizer builds the optimizer for a fleet. thresholdKm is the
// maximum client-to-cluster distance considered (0 degenerates to
// closest-cluster routing; larger than coast-to-coast degenerates to pure
// price routing, §6.1). priceThreshold is the differential dead-band in
// $/MWh; pass DefaultPriceThreshold for the paper's $5.
func NewPriceOptimizer(f *cluster.Fleet, thresholdKm, priceThreshold float64) (*PriceOptimizer, error) {
	if thresholdKm < 0 {
		return nil, errors.New("routing: negative distance threshold")
	}
	if priceThreshold < 0 {
		return nil, errors.New("routing: negative price threshold")
	}
	p := &PriceOptimizer{
		fleet:          f,
		thresholdKm:    thresholdKm,
		priceThreshold: priceThreshold,
		candidates:     make([][]int, len(f.States)),
		nearest:        make([][]int, len(f.States)),
	}
	for s := range f.States {
		p.candidates[s] = f.CandidatesWithin(s, thresholdKm)
		p.nearest[s] = distanceOrder(f, s)
	}
	if nc := len(f.Clusters); nc <= 64 {
		p.candMask = make([]uint64, len(f.States))
		p.setOf = make([]int, len(f.States))
		seen := make(map[uint64]int)
		for s, cands := range p.candidates {
			var m uint64
			for _, c := range cands {
				m |= 1 << uint(c)
			}
			p.candMask[s] = m
			id, ok := seen[m]
			if !ok {
				id = len(p.setMasks)
				seen[m] = id
				p.setMasks = append(p.setMasks, m)
			}
			p.setOf[s] = id
		}
		p.maxMaskC = nc
		p.setCheap = make([]uint64, len(p.setMasks))
		p.setMembers = make([][]int, len(p.setMasks))
		for g, m := range p.setMasks {
			for mm := m; mm != 0; mm &= mm - 1 {
				p.setMembers[g] = append(p.setMembers[g], bits.TrailingZeros64(mm))
			}
		}
		p.setRest = make([][]int, len(p.setMasks))
		for g := range p.setRest {
			p.setRest[g] = make([]int, 0, nc)
		}
		p.setTied = make([]bool, len(p.setMasks))
		p.firstPick = make([]int, len(f.States))
	}
	return p, nil
}

// Name implements Policy.
func (p *PriceOptimizer) Name() string {
	return fmt.Sprintf("price-optimizer(%.0fkm,$%.0f)", p.thresholdKm, p.priceThreshold)
}

// ThresholdKm returns the distance threshold.
func (p *PriceOptimizer) ThresholdKm() float64 { return p.thresholdKm }

// Candidates implements Sharder: the state's distance-constrained
// candidate set (with the paper's <50km nearest-cluster fallback). The
// outward walk past the candidates only fires when every candidate is
// full, which in a routing-closed partition stays inside the shard until
// the whole region saturates.
func (p *PriceOptimizer) Candidates(s int) []int { return p.candidates[s] }

// ShardPolicy implements Sharder: the same thresholds over the sub-fleet.
func (p *PriceOptimizer) ShardPolicy(sub *cluster.Fleet) (Policy, error) {
	return NewPriceOptimizer(sub, p.thresholdKm, p.priceThreshold)
}

// Allocate implements Policy. For each state it prefers the cheapest
// in-range cluster; differentials below the price threshold are ignored in
// favor of proximity, and full clusters hand off to the next candidate.
func (p *PriceOptimizer) Allocate(ctx *Context, assign [][]float64) error {
	if err := validate(p.fleet, ctx, assign); err != nil {
		return err
	}
	p.refreshOrders(ctx.DecisionPrices)
	for s, demand := range ctx.Demand {
		if demand <= 0 {
			continue
		}
		var left float64
		if p.setsValid && !p.setTied[p.setOf[s]] {
			// Fast path: the state's first dead-band candidate has room
			// for everything — the exact assignment the full walk makes.
			if c := p.firstPick[s]; ctx.Room[c] >= demand {
				assign[s][c] += demand
				ctx.Room[c] -= demand
				continue
			}
			g := p.setOf[s]
			left = fillSet(p.candidates[s], p.setCheap[g], p.setRest[g], demand, ctx, assign[s])
		} else {
			left = fill(p.orders[s], demand, ctx, assign[s])
		}
		if left > 0 {
			// All in-range clusters are full: the distance constraint
			// yields to feasibility and the excess walks outward to the
			// nearest cluster with room ("the optimizer iteratively finds
			// another good cluster", §6.1).
			left = fill(p.nearest[s], left, ctx, assign[s])
		}
		if left > 0 {
			assign[s][p.nearest[s][0]] += left // fleet saturated; engine reports overload
		}
	}
	return nil
}

// refreshOrders recomputes every state's preference order if the price
// vector changed since the last call. The fast path ranks all clusters by
// price once, resolves the dead-band cutoff and the beyond-band tail once
// per distinct candidate set, and reduces each state to a bitmask filter
// (the dead-band tier, in the state's own distance order) plus a copy of
// its set's shared tail. It reproduces preferenceOrder exactly: the cutoff
// is the same float expression, the dead-band filter is the same predicate
// over the same candidate iteration, and a tail with no equal prices has a
// unique ascending-price order — states whose tail does contain equal
// prices (where the tie-break is the state's own distances) fall back to
// the per-state sort.
func (p *PriceOptimizer) refreshOrders(prices []float64) {
	if p.orders != nil && equalPrices(p.lastPrices, prices) {
		return
	}
	if p.orders == nil {
		p.orders = make([][]int, len(p.candidates))
		for s := range p.orders {
			p.orders[s] = make([]int, 0, len(p.candidates[s]))
		}
		p.lastPrices = make([]float64, len(prices))
	}
	if p.candMask == nil || len(prices) > p.maxMaskC {
		for s := range p.candidates {
			p.orders[s] = p.preferenceOrder(s, prices, p.orders[s][:0])
		}
		p.setsValid = false
		copy(p.lastPrices, prices)
		return
	}
	anyTied := false
	for g, members := range p.setMembers {
		// Pass 1: the set's minimum price, scanning members in ascending
		// index order — the same min preferenceOrder computes over cands.
		pmin := prices[members[0]]
		for _, c := range members[1:] {
			if pc := prices[c]; pc < pmin {
				pmin = pc
			}
		}
		cutoff := pmin + p.priceThreshold
		// Pass 2: split members into the dead-band tier (a bitmask) and
		// the beyond-band tail, insertion-sorted by ascending price.
		// Members arrive in ascending index order and the sort shifts only
		// on a strict price win, so equal prices keep index order — the
		// same stable tie order a full ranked walk produces.
		var cheap uint64
		rest := p.setRest[g][:0]
		for _, c := range members {
			pc := prices[c]
			if pc <= cutoff {
				cheap |= 1 << uint(c)
				continue
			}
			j := len(rest) - 1
			rest = append(rest, 0)
			for j >= 0 && pc < prices[rest[j]] {
				rest[j+1] = rest[j]
				j--
			}
			rest[j+1] = c
		}
		tied := false
		for i := 1; i < len(rest); i++ {
			if prices[rest[i]] == prices[rest[i-1]] {
				tied = true
				anyTied = true
				break
			}
		}
		p.setCheap[g] = cheap
		p.setRest[g] = rest
		p.setTied[g] = tied
	}
	// Untied sets are routed straight off the tables by Allocate; all the
	// per-state work left is finding each state's first dead-band
	// candidate (its whole demand usually lands there, so Allocate can
	// short-circuit the walk). Only states whose set needs per-state
	// distance tie-breaks get a materialized order.
	for s, cands := range p.candidates {
		g := p.setOf[s]
		if anyTied && p.setTied[g] {
			p.orders[s] = p.preferenceOrder(s, prices, p.orders[s][:0])
			p.firstPick[s] = -1
			continue
		}
		cheap := p.setCheap[g]
		for _, c := range cands {
			if cheap&(1<<uint(c)) != 0 {
				p.firstPick[s] = c
				break
			}
		}
	}
	p.setsValid = true
	copy(p.lastPrices, prices)
}

// fillSet is fill over the virtual order [members of cheap, in cands
// order] ++ rest, without materializing it: the same two tiers (committed
// room across the whole sequence, then burst room), the same walk, the
// same arithmetic — bit-identical to fill on the concatenated slice.
func fillSet(cands []int, cheap uint64, rest []int, demand float64, ctx *Context, row []float64) float64 {
	remaining := demand
	for _, c := range cands {
		if cheap&(1<<uint(c)) == 0 {
			continue
		}
		if remaining <= 0 {
			return 0
		}
		take := ctx.Room[c]
		if take > remaining {
			take = remaining
		}
		if take > 0 {
			row[c] += take
			ctx.Room[c] -= take
			remaining -= take
		}
	}
	for _, c := range rest {
		if remaining <= 0 {
			return 0
		}
		take := ctx.Room[c]
		if take > remaining {
			take = remaining
		}
		if take > 0 {
			row[c] += take
			ctx.Room[c] -= take
			remaining -= take
		}
	}
	for _, c := range cands {
		if cheap&(1<<uint(c)) == 0 {
			continue
		}
		if remaining <= 0 {
			return 0
		}
		take := ctx.BurstRoom[c]
		if take > remaining {
			take = remaining
		}
		if take > 0 {
			row[c] += take
			ctx.BurstRoom[c] -= take
			remaining -= take
		}
	}
	for _, c := range rest {
		if remaining <= 0 {
			return 0
		}
		take := ctx.BurstRoom[c]
		if take > remaining {
			take = remaining
		}
		if take > 0 {
			row[c] += take
			ctx.BurstRoom[c] -= take
			remaining -= take
		}
	}
	return remaining
}

func equalPrices(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// preferenceOrder ranks state s's candidates: clusters priced within the
// dead-band of the in-range minimum come first (nearest first among them),
// the rest follow by ascending price then distance.
func (p *PriceOptimizer) preferenceOrder(s int, prices []float64, order []int) []int {
	cands := p.candidates[s]
	pmin := prices[cands[0]]
	for _, c := range cands[1:] {
		if prices[c] < pmin {
			pmin = prices[c]
		}
	}
	cutoff := pmin + p.priceThreshold
	// Cheap tier in candidate (distance) order.
	for _, c := range cands {
		if prices[c] <= cutoff {
			order = append(order, c)
		}
	}
	head := len(order)
	for _, c := range cands {
		if prices[c] > cutoff {
			order = append(order, c)
		}
	}
	rest := order[head:]
	dist := p.fleet.DistanceKm[s]
	// Stable insertion sort: rest is at most a handful of cluster indices
	// and this runs for every state on every price change, where
	// sort.SliceStable's reflection-based swapper dominated the whole
	// simulation profile (~60% of the hourly step loop).
	for i := 1; i < len(rest); i++ {
		c := rest[i]
		j := i - 1
		for j >= 0 && (prices[c] < prices[rest[j]] ||
			(prices[c] == prices[rest[j]] && dist[c] < dist[rest[j]])) {
			rest[j+1] = rest[j]
			j--
		}
		rest[j+1] = c
	}
	return order
}

// ApplyPriceCaps caps each decision price at caps[c] in place. The
// simulation engine uses it to make the routing signal storage-aware: a
// cluster whose battery serves the load above its discharge threshold
// never looks more expensive to the router than that threshold, so a
// price spike at a charged site no longer repels traffic the battery
// would have absorbed. A cap of +Inf (or any value at or above the price)
// leaves the signal untouched, preserving byte-identical behavior for
// storage-free runs.
func ApplyPriceCaps(prices, caps []float64) {
	for c := range prices {
		if c < len(caps) && caps[c] < prices[c] {
			prices[c] = caps[c]
		}
	}
}

// AllToOne sends every request to a single cluster index: the static
// solution of §6.3 ("place all servers in cheapest market").
type AllToOne struct {
	fleet  *cluster.Fleet
	target int
	order  [1]int // the one-element preference order, so Allocate stays allocation-free
}

// NewAllToOne builds the static policy for the given cluster index.
func NewAllToOne(f *cluster.Fleet, target int) (*AllToOne, error) {
	if target < 0 || target >= len(f.Clusters) {
		return nil, fmt.Errorf("routing: target %d out of range", target)
	}
	return &AllToOne{fleet: f, target: target, order: [1]int{target}}, nil
}

// Name implements Policy.
func (a *AllToOne) Name() string {
	return "static-" + a.fleet.Clusters[a.target].Code
}

// Allocate implements Policy.
func (a *AllToOne) Allocate(ctx *Context, assign [][]float64) error {
	if err := validate(a.fleet, ctx, assign); err != nil {
		return err
	}
	order := a.order[:]
	for s, demand := range ctx.Demand {
		if demand <= 0 {
			continue
		}
		if left := fill(order, demand, ctx, assign[s]); left > 0 {
			assign[s][a.target] += left // static site saturated; engine reports overload
		}
	}
	return nil
}

// distanceOrder returns cluster indices sorted by distance from state s.
func distanceOrder(f *cluster.Fleet, s int) []int {
	order := make([]int, len(f.Clusters))
	for i := range order {
		order[i] = i
	}
	dist := f.DistanceKm[s]
	sort.Slice(order, func(i, j int) bool { return dist[order[i]] < dist[order[j]] })
	return order
}
