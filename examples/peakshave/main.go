// peakshave demonstrates the energy-storage subsystem: site batteries
// arbitraging each hub's hourly prices, and peak-shaving dispatch cutting
// the demand-charge component of a commercial tariff — two levers that
// compose with the paper's geographic routing.
//
//	go run ./examples/peakshave
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/report"
	"powerroute/internal/routing"
	"powerroute/internal/sim"
	"powerroute/internal/storage"
	"powerroute/internal/timeseries"
)

func main() {
	// A 6-month world keeps the example snappy; use the default 39 months
	// for the full experiment (powerroute ext-storage ext-peakshave).
	sys, err := core.NewSystem(core.Options{Seed: 42, MarketMonths: 6})
	if err != nil {
		log.Fatal(err)
	}

	// One battery per cluster, sized per server: 1 kWh of capacity and
	// 150 W each way, 85% round trip.
	batteries := make([]storage.Battery, len(sys.Fleet.Clusters))
	prices := make([]*timeseries.Series, len(sys.Fleet.Clusters))
	for c, cl := range sys.Fleet.Clusters {
		n := float64(cl.Servers)
		batteries[c] = storage.Battery{
			CapacityKWh:         1.0 * n,
			MaxChargeKW:         0.150 * n,
			MaxDischargeKW:      0.150 * n,
			RoundTripEfficiency: 0.85,
		}
		if prices[c], err = sys.Market.RT(cl.HubID); err != nil {
			log.Fatal(err)
		}
	}
	dispatch, err := storage.NewPercentile(prices, 0.20, 0.80)
	if err != nil {
		log.Fatal(err)
	}

	base := sim.Scenario{
		Fleet: sys.Fleet, Energy: energy.OptimisticFuture, Market: sys.Market,
		Demand: sys.LongRun, Start: sys.Market.Start, Steps: sys.Market.Hours,
		Step: time.Hour, ReactionDelay: sim.DefaultReactionDelay,
		DemandChargePerKW: 12, // $/kW-month on each cluster's monthly peak
	}
	run := func(cfg *storage.Config) *sim.Result {
		sc := base
		sc.Policy = routing.NewBaseline(sys.Fleet)
		sc.Storage = cfg
		res, err := sim.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	noBattery := run(nil)
	arbitrage := run(&storage.Config{Batteries: batteries, Policy: dispatch})

	// Peak-shaving dispatch defends 90% of the no-battery peaks and
	// refills only below 70%, so charging never mints a new monthly peak.
	targets := make([]float64, len(noBattery.PeakGridKW))
	floors := make([]float64, len(noBattery.PeakGridKW))
	for c, kw := range noBattery.PeakGridKW {
		targets[c] = 0.9 * kw
		floors[c] = 0.7 * kw
	}
	shaver, err := storage.NewPeakShaver(targets, floors)
	if err != nil {
		log.Fatal(err)
	}
	shaved := run(&storage.Config{Batteries: batteries, Policy: shaver})

	t := report.NewTable("Batteries under a demand-charge tariff ($12/kW-month, 6 months)",
		"Dispatch", "Energy bill", "Demand charge", "Total", "Served (MWh)")
	for _, row := range []struct {
		label string
		r     *sim.Result
	}{
		{"No battery", noBattery},
		{"Price arbitrage (p20/p80)", arbitrage},
		{"Peak shaver (90%/70%)", shaved},
	} {
		t.Add(row.label, row.r.EnergyCost.String(), row.r.DemandCharge.String(),
			row.r.TotalCost.String(), fmt.Sprintf("%.1f", row.r.StorageServedKWh/1000))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nArbitrage vs no battery:   energy %+.1f%%, demand charge %+.1f%%\n",
		100*(float64(arbitrage.EnergyCost)/float64(noBattery.EnergyCost)-1),
		100*(float64(arbitrage.DemandCharge)/float64(noBattery.DemandCharge)-1))
	fmt.Printf("Peak shaver vs no battery: energy %+.1f%%, demand charge %+.1f%%\n",
		100*(float64(shaved.EnergyCost)/float64(noBattery.EnergyCost)-1),
		100*(float64(shaved.DemandCharge)/float64(noBattery.DemandCharge)-1))
	fmt.Println("\nThe arbitrage battery buys cheap hours but its charging draw is billed by")
	fmt.Println("the demand meter; the peak shaver gives up most energy savings to cut the")
	fmt.Println("peak-kW component instead. Pick the dispatch to match the tariff.")
}
