// Quickstart: assemble the simulated world, run the paper's headline
// experiment once, and print what price-aware request routing would save.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"powerroute/internal/core"
	"powerroute/internal/energy"
)

func main() {
	// One seeded world: 39 months of wholesale prices for 29 hubs, a
	// 24-day CDN trace, and a nine-cluster fleet sized from its peaks.
	sys, err := core.NewSystem(core.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's configuration: fully elastic future servers (0% idle
	// power, PUE 1.1), clients kept within 1500 km, routing re-decided
	// hourly on the previous hour's prices.
	out, err := sys.Run(core.RunConfig{
		Horizon:             core.Trace24Day,
		Energy:              energy.OptimisticFuture,
		DistanceThresholdKm: 1500,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Cutting the electric bill, 24-day trace:")
	fmt.Printf("  baseline (Akamai-like) cost:   %v\n", out.Baseline.TotalCost)
	fmt.Printf("  price-aware routing cost:      %v\n", out.Optimized.TotalCost)
	fmt.Printf("  savings:                       %.1f%%\n", 100*out.Savings)
	fmt.Printf("  mean client-server distance:   %.0f km -> %.0f km\n",
		out.Baseline.MeanDistanceKm, out.Optimized.MeanDistanceKm)

	// The same run under the bandwidth bill's 95/5 constraints.
	constrained, err := sys.Run(core.RunConfig{
		Horizon:             core.Trace24Day,
		Energy:              energy.OptimisticFuture,
		DistanceThresholdKm: 1500,
		Follow95:            true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  savings honoring 95/5 bills:   %.1f%%\n", 100*constrained.Savings)

	// And with today's (2009-era Google) energy elasticity instead of the
	// optimistic future — the paper's key sensitivity.
	google, err := sys.Run(core.RunConfig{
		Horizon:             core.Trace24Day,
		Energy:              energy.CuttingEdge,
		DistanceThresholdKm: 1500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  savings at (65%% idle, 1.3 PUE): %.1f%% — elasticity gates everything\n",
		100*google.Savings)
}
