// cdnopt plays out a CDN operator's planning meeting: given our current
// hardware (how elastic is it?), our bandwidth contracts (95/5 billing),
// and our latency budget (how far may clients travel?), what does price-
// aware routing buy us — and which knob matters most?
//
//	go run ./examples/cdnopt
package main

import (
	"fmt"
	"log"
	"os"

	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/report"
)

func main() {
	sys, err := core.NewSystem(core.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Decision 1: hardware roadmap. Each generation changes elasticity.
	hardware := []struct {
		name  string
		model energy.Model
	}{
		{"today, no power mgmt", energy.NoPowerManagement},
		{"today, tuned (Google-like)", energy.CuttingEdge},
		{"next-gen (33% idle, 1.3 PUE)", mustModel(250, 0.33, 1.3)},
		{"energy-proportional future", energy.OptimisticFuture},
	}
	t := report.NewTable("What routing on price buys, by hardware generation (1500 km, 24-day trace)",
		"Hardware", "Idle/PUE", "Relaxed", "Within 95/5 bills")
	for _, hw := range hardware {
		relaxed, err := sys.Run(core.RunConfig{
			Horizon: core.Trace24Day, Energy: hw.model, DistanceThresholdKm: 1500,
		})
		if err != nil {
			log.Fatal(err)
		}
		follow, err := sys.Run(core.RunConfig{
			Horizon: core.Trace24Day, Energy: hw.model, DistanceThresholdKm: 1500, Follow95: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		t.Add(hw.name, hw.model.String(),
			fmt.Sprintf("%.1f%%", 100*relaxed.Savings),
			fmt.Sprintf("%.1f%%", 100*follow.Savings))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Decision 2: the latency budget. How much distance buys how much?
	fmt.Println()
	t2 := report.NewTable("Latency budget vs savings (energy-proportional hardware, within 95/5)",
		"Max client-server distance", "Savings", "p99 distance")
	for _, km := range []float64{500, 1100, 1500, 2000} {
		out, err := sys.Run(core.RunConfig{
			Horizon: core.Trace24Day, Energy: energy.OptimisticFuture,
			DistanceThresholdKm: km, Follow95: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		t2.Add(fmt.Sprintf("%.0f km", km),
			fmt.Sprintf("%.1f%%", 100*out.Savings),
			fmt.Sprintf("%.0f km", out.Optimized.P99DistanceKm))
	}
	if _, err := t2.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Decision 3: check the bandwidth bill didn't move. The billable rate
	// is each cluster's 95th percentile (§4); compare optimizer vs cap.
	out, err := sys.Run(core.RunConfig{
		Horizon: core.Trace24Day, Energy: energy.OptimisticFuture,
		DistanceThresholdKm: 1500, Follow95: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	t3 := report.NewTable("Bandwidth bill check (billable p95 hit rate, hits/s)",
		"Cluster", "Baseline bill", "Optimized bill", "Headroom")
	for i, c := range sys.Fleet.Clusters {
		t3.Add(c.Code,
			fmt.Sprintf("%.0f", out.Caps[i]),
			fmt.Sprintf("%.0f", out.Optimized.BillableP95[i]),
			fmt.Sprintf("%.1f%%", 100*(1-out.Optimized.BillableP95[i]/out.Caps[i])))
	}
	if _, err := t3.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNo cluster's 95th percentile rose: the electricity savings are free of")
	fmt.Println("bandwidth-bill increases (the paper's §4/§6.2 constraint).")
}

func mustModel(peak float64, idle, pue float64) energy.Model {
	m, err := energy.New(250, idle, pue)
	if err != nil {
		panic(err)
	}
	return m
}
