// carbonaware implements §8's "Environmental Cost" future-work sketch: a
// socially responsible operator routes on gCO₂/kWh instead of $/MWh. The
// example sweeps the latency budget and prints the dollar/carbon frontier.
//
//	go run ./examples/carbonaware
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"powerroute/internal/carbon"
	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/report"
	"powerroute/internal/routing"
	"powerroute/internal/sim"
)

func main() {
	sys, err := core.NewSystem(core.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	// Synthesize each cluster's hourly grid carbon intensity: coal-heavy
	// Midwest vs gas Texas vs hydro-leavened California, with demand-
	// coupled diurnal swings and wind regimes (§8: "the footprint varies
	// depending upon what generating assets are active").
	intensity, err := carbon.FleetSeries(42, sys.Fleet, sys.Market.Start, sys.Market.Hours)
	if err != nil {
		log.Fatal(err)
	}

	base := sim.Scenario{
		Fleet: sys.Fleet, Energy: energy.OptimisticFuture, Market: sys.Market,
		Demand: sys.LongRun, Start: sys.Market.Start, Steps: sys.Market.Hours,
		Step: time.Hour, ReactionDelay: sim.DefaultReactionDelay,
		Carbon: intensity,
	}
	baseline := base
	baseline.Policy = routing.NewBaseline(sys.Fleet)
	baseRes, err := sim.Run(baseline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Baseline over 39 months: %v and %.0f tCO2\n\n",
		baseRes.TotalCost, baseRes.TotalCarbonKg/1000)

	t := report.NewTable("The dollar/carbon frontier by routing signal and latency budget",
		"Signal", "Threshold", "Cost vs baseline", "CO2 vs baseline")
	for _, km := range []float64{1000, 1500, 2500} {
		for _, signal := range []string{"price", "carbon"} {
			sc := base
			deadband := routing.DefaultPriceThreshold
			if signal == "carbon" {
				// Intensities span hundreds of g/kWh; use a 10 g dead-band.
				deadband = 10
				sc.DecisionSeries = intensity
			}
			opt, err := routing.NewPriceOptimizer(sys.Fleet, km, deadband)
			if err != nil {
				log.Fatal(err)
			}
			sc.Policy = opt
			res, err := sim.Run(sc)
			if err != nil {
				log.Fatal(err)
			}
			t.Add(signal, fmt.Sprintf("%.0f km", km),
				fmt.Sprintf("%+.1f%%", 100*(res.NormalizedCost(baseRes)-1)),
				fmt.Sprintf("%+.1f%%", 100*(res.TotalCarbonKg/baseRes.TotalCarbonKg-1)))
		}
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nUnlike price differentials — which \"reduce cost but not energy\" — routing")
	fmt.Println("toward clean regions reduces emissions directly; the two signals pull in")
	fmt.Println("different directions, and an operator picks a point on the frontier (§8).")
}
