// demandresponse explores §7's "Selling Flexibility": instead of only
// chasing cheap prices, a distributed system can sell its ability to shed
// load — through triggered demand-response programs and negawatt bids in
// the day-ahead auction.
//
//	go run ./examples/demandresponse
package main

import (
	"fmt"
	"log"
	"os"

	"powerroute/internal/core"
	"powerroute/internal/demand"
	"powerroute/internal/energy"
	"powerroute/internal/report"
	"powerroute/internal/units"
)

func main() {
	sys, err := core.NewSystem(core.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	// How much can each cluster shed? The variable (routable) power at its
	// typical utilization: suspend servers, route clients elsewhere.
	_, base, err := sys.Baseline(core.LongRun39Months, energy.OptimisticFuture)
	if err != nil {
		log.Fatal(err)
	}

	program := demand.Program{
		TriggerPrice:   250, // grid-stress proxy: $250/MWh real-time
		MaxEventHours:  4,
		CooldownHours:  12,
		EnergyCredit:   100,  // $/MWh shed during events
		CapacityCredit: 4000, // $/MW/month for standing by
	}
	fmt.Printf("Program: trigger %v, credit %v/MWh shed, $%.0f/MW-month standby\n\n",
		program.TriggerPrice, program.EnergyCredit, float64(program.CapacityCredit))

	t := report.NewTable("Triggered demand response over the 39-month history",
		"Cluster", "Shed capacity", "Events", "Event hours", "Settlement")
	var pool demand.Aggregator
	var total units.Money
	for i, cl := range sys.Fleet.Clusters {
		shedMW := energy.OptimisticFuture.VariablePower(base.MeanUtilization[i], cl.Servers).Megawatts()
		rt, err := sys.Market.RT(cl.HubID)
		if err != nil {
			log.Fatal(err)
		}
		events, err := program.Events(rt)
		if err != nil {
			log.Fatal(err)
		}
		settlement, err := program.Settle(events, shedMW, 39)
		if err != nil {
			log.Fatal(err)
		}
		total += settlement.Total
		pool.Add(demand.Bloc{Name: cl.Code, KW: shedMW * 1000, Availability: 0.95})
		t.Add(cl.Code, fmt.Sprintf("%.2f MW", shedMW),
			fmt.Sprintf("%d", settlement.Events),
			fmt.Sprintf("%d", settlement.EventHours),
			settlement.Total.String())
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTotal settlement: %v against a %v electricity bill.\n", total, base.TotalCost)
	fmt.Printf("Pooled (EnerNOC-style), the fleet offers %.2f MW firm — \"only a few racks\nper location are needed to construct a multi-market demand response system\".\n\n",
		pool.FirmMW())

	// Negawatt bid ladder on the NYC day-ahead market: how offer price
	// trades clearing frequency against revenue.
	da, err := sys.Market.DA("NYC")
	if err != nil {
		log.Fatal(err)
	}
	t2 := report.NewTable("Negawatt bid ladder, NYC day-ahead, 5 MW offered",
		"Offer ($/MWh)", "Hours cleared", "Energy sold", "Revenue")
	for _, offer := range []units.Price{100, 150, 200, 300} {
		bid := demand.NegawattBid{OfferPrice: offer, MW: 5}
		res, err := bid.Evaluate(da)
		if err != nil {
			log.Fatal(err)
		}
		t2.Add(fmt.Sprintf("%.0f", float64(offer)),
			fmt.Sprintf("%d", res.HoursCleared),
			res.EnergySold.String(),
			res.Revenue.String())
	}
	if _, err := t2.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLow offers clear constantly (but commit the system often); high offers")
	fmt.Println("monetize only the spikes. Flexibility is valued even under fixed-price")
	fmt.Println("supply contracts — no wholesale exposure required (§7).")
}
