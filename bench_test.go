// Package powerroute_bench regenerates every table and figure in the
// paper's evaluation as a benchmark: each Benchmark* target runs the
// corresponding experiment end to end on the canonical seeded world and
// reports headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both regenerates the results and measures the cost of doing so. The
// rendered rows themselves come from `go run ./cmd/powerroute all`.
package powerroute_bench

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/experiments"
	"powerroute/internal/market"
	"powerroute/internal/routing"
	"powerroute/internal/sim"
	"powerroute/internal/traffic"
)

// benchEnv returns the shared full-size world.
func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	env, err := experiments.SharedEnv()
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// runFigure benchmarks one registered experiment.
func runFigure(b *testing.B, id string) {
	b.Helper()
	env := benchEnv(b)
	def, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := def.Run(env)
		if err != nil {
			b.Fatal(err)
		}
		if res.Text == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig01AnnualCosts(b *testing.B)      { runFigure(b, "fig1") }
func BenchmarkFig02Hubs(b *testing.B)             { runFigure(b, "fig2") }
func BenchmarkFig03DailyPrices(b *testing.B)      { runFigure(b, "fig3") }
func BenchmarkFig04MarketComparison(b *testing.B) { runFigure(b, "fig4") }
func BenchmarkFig05VolatilityWindows(b *testing.B) {
	runFigure(b, "fig5")
}
func BenchmarkFig06HubStats(b *testing.B)     { runFigure(b, "fig6") }
func BenchmarkFig07HourlyDeltas(b *testing.B) { runFigure(b, "fig7") }
func BenchmarkFig08Correlation(b *testing.B)  { runFigure(b, "fig8") }
func BenchmarkFig09Differentials(b *testing.B) {
	runFigure(b, "fig9")
}
func BenchmarkFig10DiffHistograms(b *testing.B) { runFigure(b, "fig10") }
func BenchmarkFig11MonthlyDiff(b *testing.B)    { runFigure(b, "fig11") }
func BenchmarkFig12HourOfDay(b *testing.B)      { runFigure(b, "fig12") }
func BenchmarkFig13Durations(b *testing.B)      { runFigure(b, "fig13") }
func BenchmarkFig14Traffic(b *testing.B)        { runFigure(b, "fig14") }

// BenchmarkFig15ElasticitySavings also reports the headline savings
// percentages so the bench log doubles as a results record.
func BenchmarkFig15ElasticitySavings(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15ElasticitySavings(env)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.StopTimer()
	relaxed, err := env.System.Run(core.RunConfig{
		Horizon: core.Trace24Day, Energy: energy.OptimisticFuture, DistanceThresholdKm: 1500,
	})
	if err != nil {
		b.Fatal(err)
	}
	follow, err := env.System.Run(core.RunConfig{
		Horizon: core.Trace24Day, Energy: energy.OptimisticFuture, DistanceThresholdKm: 1500, Follow95: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*relaxed.Savings, "%savings-relaxed")
	b.ReportMetric(100*follow.Savings, "%savings-95/5")
}

func BenchmarkFig16CostVsDistance(b *testing.B)  { runFigure(b, "fig16") }
func BenchmarkFig17ClientDistance(b *testing.B)  { runFigure(b, "fig17") }
func BenchmarkFig18LongRun(b *testing.B)         { runFigure(b, "fig18") }
func BenchmarkFig19PerCluster(b *testing.B)      { runFigure(b, "fig19") }
func BenchmarkFig20ReactionDelay(b *testing.B)   { runFigure(b, "fig20") }
func BenchmarkAblationDeadband(b *testing.B)     { runFigure(b, "ablation-deadband") }
func BenchmarkAblationExponent(b *testing.B)     { runFigure(b, "ablation-exponent") }
func BenchmarkAblationHardCap(b *testing.B)      { runFigure(b, "ablation-hardcap") }
func BenchmarkAblationUniformFleet(b *testing.B) { runFigure(b, "ablation-uniform") }
func BenchmarkExtCarbonAware(b *testing.B)       { runFigure(b, "ext-carbon") }
func BenchmarkExtDemandResponse(b *testing.B)    { runFigure(b, "ext-demand") }

// --- Whole-registry engine benchmarks -------------------------------------

// benchRegistry regenerates every registered experiment through the
// concurrent engine at a given worker count. Comparing the two targets
// below pins the parallel engine's speedup on the machine at hand:
//
//	go test -bench='BenchmarkRegistry' -benchtime=1x
func benchRegistry(b *testing.B, parallel int) {
	env := benchEnv(b)
	defs := experiments.All()
	experiments.SetParallelism(parallel)
	defer experiments.SetParallelism(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunAll(env, defs, parallel)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(defs) {
			b.Fatalf("got %d results, want %d", len(results), len(defs))
		}
	}
}

// BenchmarkRegistrySerial runs the full figure suite on one worker (the
// pre-parallel engine's behavior).
func BenchmarkRegistrySerial(b *testing.B) { benchRegistry(b, 1) }

// BenchmarkRegistryParallel runs the full figure suite on one worker per
// CPU.
func BenchmarkRegistryParallel(b *testing.B) { benchRegistry(b, runtime.GOMAXPROCS(0)) }

// --- Component micro-benchmarks -------------------------------------------

// BenchmarkMarketGeneration measures synthesizing the full 39-month,
// 29-hub price history.
func BenchmarkMarketGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := market.Generate(market.Config{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		_ = d
	}
}

// BenchmarkTrafficGeneration measures synthesizing the 24-day, 51-state
// 5-minute workload.
func BenchmarkTrafficGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := traffic.Generate(traffic.Config{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		_ = tr
	}
}

// BenchmarkSimulation24Day measures one full 24-day 5-minute-step
// simulation under the price optimizer.
func BenchmarkSimulation24Day(b *testing.B) {
	env := benchEnv(b)
	sys := env.System
	demand, err := sim.FromTrace(sys.Trace)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := routing.NewPriceOptimizer(sys.Fleet, 1500, routing.DefaultPriceThreshold)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(sim.Scenario{
			Fleet: sys.Fleet, Policy: opt, Energy: energy.OptimisticFuture,
			Market: sys.Market, Demand: demand,
			Start: sys.Trace.Start, Steps: sys.Trace.Samples, Step: 5 * time.Minute,
			ReactionDelay: sim.DefaultReactionDelay,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	steps := float64(sys.Trace.Samples)
	b.ReportMetric(steps*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkSimulation39Month measures one hourly-step 39-month run.
func BenchmarkSimulation39Month(b *testing.B) {
	env := benchEnv(b)
	sys := env.System
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := routing.NewPriceOptimizer(sys.Fleet, 1500, routing.DefaultPriceThreshold)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(sim.Scenario{
			Fleet: sys.Fleet, Policy: opt, Energy: energy.OptimisticFuture,
			Market: sys.Market, Demand: sys.LongRun,
			Start: sys.Market.Start, Steps: sys.Market.Hours, Step: time.Hour,
			ReactionDelay: sim.DefaultReactionDelay,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	steps := float64(sys.Market.Hours)
	b.ReportMetric(steps*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkAllocateStep measures one routing decision (51 states onto 9
// clusters) in isolation.
func BenchmarkAllocateStep(b *testing.B) {
	env := benchEnv(b)
	fleet := env.System.Fleet
	opt, err := routing.NewPriceOptimizer(fleet, 1500, routing.DefaultPriceThreshold)
	if err != nil {
		b.Fatal(err)
	}
	ns, nc := len(fleet.States), len(fleet.Clusters)
	ctx := &routing.Context{
		Demand:         make([]float64, ns),
		DecisionPrices: make([]float64, nc),
		Room:           make([]float64, nc),
		BurstRoom:      make([]float64, nc),
	}
	assign := make([][]float64, ns)
	for s := range assign {
		assign[s] = make([]float64, nc)
	}
	for s := range ctx.Demand {
		ctx.Demand[s] = 5000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c, cl := range fleet.Clusters {
			ctx.DecisionPrices[c] = float64(30 + (i+c)%50) // shift prices to defeat the order cache
			ctx.Room[c] = float64(cl.Capacity)
			ctx.BurstRoom[c] = 0
		}
		for s := range assign {
			row := assign[s]
			for c := range row {
				row[c] = 0
			}
		}
		if err := opt.Allocate(ctx, assign); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchHarness keeps `go test ./...` exercising this package: it runs
// the cheapest figure end to end.
func TestBenchHarness(t *testing.T) {
	env, err := experiments.SharedEnv()
	if err != nil {
		t.Fatal(err)
	}
	def, ok := experiments.Get("fig1")
	if !ok {
		t.Fatal("fig1 missing")
	}
	res, err := def.Run(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "Google") {
		t.Error("fig1 output incomplete")
	}
}

// BenchmarkExtJointOptimization regenerates the §8 joint-optimization
// frontier.
func BenchmarkExtJointOptimization(b *testing.B) { runFigure(b, "ext-joint") }

// regionalScenario is the 39-month world under a 600 km optimizer — the
// tightest reach, splitting the fleet into 3 routing-closed market
// regions — with a fresh policy per call (engines must not share an
// optimizer's order cache).
func regionalScenario(b *testing.B, env *experiments.Env) sim.Scenario {
	b.Helper()
	sys := env.System
	opt, err := routing.NewPriceOptimizer(sys.Fleet, 600, routing.DefaultPriceThreshold)
	if err != nil {
		b.Fatal(err)
	}
	return sim.Scenario{
		Fleet: sys.Fleet, Policy: opt, Energy: energy.OptimisticFuture,
		Market: sys.Market, Demand: sys.LongRun,
		Start: sys.Market.Start, Steps: sys.Market.Hours, Step: time.Hour,
		ReactionDelay: sim.DefaultReactionDelay,
	}
}

// stepInputs holds every interval's inputs precomputed — instants,
// delayed decision prices, billing prices, demand — so the regional
// drive benchmarks time engine stepping alone, not series lookups.
type stepInputs struct {
	at             []time.Time
	decision, bill [][]float64
	demand         [][]float64
}

func regionalInputs(b *testing.B, env *experiments.Env) *stepInputs {
	b.Helper()
	sc := regionalScenario(b, env)
	eng, err := sim.NewEngine(sc)
	if err != nil {
		b.Fatal(err)
	}
	prices := eng.PriceSeries()
	marketStart := prices[0].Start
	in := &stepInputs{
		at:       make([]time.Time, sc.Steps),
		decision: make([][]float64, sc.Steps),
		bill:     make([][]float64, sc.Steps),
		demand:   make([][]float64, sc.Steps),
	}
	for s := 0; s < sc.Steps; s++ {
		at := sc.Start.Add(time.Duration(s) * sc.Step)
		in.at[s] = at
		in.decision[s] = make([]float64, len(prices))
		in.bill[s] = make([]float64, len(prices))
		decisionAt := at.Add(-sc.ReactionDelay)
		if decisionAt.Before(marketStart) {
			decisionAt = marketStart
		}
		for c := range prices {
			v, err := prices[c].At(decisionAt)
			if err != nil {
				b.Fatal(err)
			}
			in.decision[s][c] = v
			if v, err = prices[c].At(at); err != nil {
				b.Fatal(err)
			}
			in.bill[s][c] = v
		}
		in.demand[s] = sc.Demand.Rates(at, nil)
	}
	return in
}

// driveInputs steps an engine (single or parallel) through every
// precomputed interval and closes the books.
func driveInputs(b *testing.B, eng interface {
	Step(at time.Time, prices sim.StepPrices, demand []float64) error
	Finalize() (*sim.Result, error)
}, in *stepInputs) {
	b.Helper()
	for s := range in.at {
		if err := eng.Step(in.at[s], sim.StepPrices{Decision: in.decision[s], Bill: in.bill[s]}, in.demand[s]); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := eng.Finalize(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRegional39MonthJoint drives the 3-region world on one engine —
// the baseline the parallel-shard speedup is measured against.
func BenchmarkRegional39MonthJoint(b *testing.B) {
	env := benchEnv(b)
	in := regionalInputs(b, env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := sim.NewEngine(regionalScenario(b, env))
		if err != nil {
			b.Fatal(err)
		}
		driveInputs(b, eng, in)
	}
	b.ReportMetric(float64(len(in.at))*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkRegional39MonthParallel drives the same world as 3 in-process
// parallel shard engines (sim.ParallelEngine); the steps/s ratio against
// the Joint benchmark is the parallel-shard speedup on this box.
func BenchmarkRegional39MonthParallel(b *testing.B) {
	env := benchEnv(b)
	in := regionalInputs(b, env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := regionalScenario(b, env)
		p, err := sim.PartitionByRouting(sc.Policy.(routing.Sharder), sc.Fleet)
		if err != nil {
			b.Fatal(err)
		}
		par, err := sim.NewParallelEngine(sc, p)
		if err != nil {
			b.Fatal(err)
		}
		driveInputs(b, par, in)
	}
	b.ReportMetric(float64(len(in.at))*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
}
