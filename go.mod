module powerroute

go 1.24
