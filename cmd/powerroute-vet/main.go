// powerroute-vet runs the repo's custom static analyzers (internal/lint):
// maprange, wallclock, ckptfield, and lockcheck — the checks that keep
// the simulation bit-for-bit reproducible and the checkpoint complete.
//
// Two modes:
//
//	powerroute-vet ./...
//		standalone: loads the named packages (go list syntax) from the
//		current directory and reports findings; exit status 1 if any.
//
//	go vet -vettool=$(which powerroute-vet) ./...
//		vet-tool: speaks the cmd/go vet protocol (a single *.cfg JSON
//		argument per package), so findings integrate with go vet's
//		per-package caching and output.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"powerroute/internal/lint"
	"powerroute/internal/lint/analysis"
	"powerroute/internal/lint/load"
)

func main() {
	args := os.Args[1:]
	// cmd/go probes the tool's identity for its action cache, and its
	// flag set (a JSON table; this suite takes no analyzer flags).
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetTool(args[0]))
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: powerroute-vet <packages>   (e.g. powerroute-vet ./...)")
		os.Exit(2)
	}
	os.Exit(standalone(args))
}

// printVersion emits the `-V=full` line cmd/go's action cache parses:
// "<name> version devel ... buildID=<content hash>", hashing the binary
// itself so a rebuilt tool invalidates cached vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("powerroute-vet version devel comments-go-here buildID=%02x\n", h.Sum(nil))
}

// report prints diagnostics sorted by position and returns the count.
func report(fset *token.FileSet, diags []analysis.Diagnostic, names []string) int {
	type line struct {
		pos  token.Position
		text string
	}
	lines := make([]line, len(diags))
	for i, d := range diags {
		lines[i] = line{fset.Position(d.Pos), fmt.Sprintf("[%s] %s", names[i], d.Message)}
	}
	sort.Slice(lines, func(i, j int) bool {
		a, b := lines[i].pos, lines[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return lines[i].text < lines[j].text
	})
	for _, l := range lines {
		fmt.Fprintf(os.Stderr, "%s: %s\n", l.pos, l.text)
	}
	return len(lines)
}

func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]analysis.Diagnostic, []string) {
	var diags []analysis.Diagnostic
	var names []string
	for _, a := range lint.Analyzers() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, d)
			names = append(names, name)
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "powerroute-vet: %s: %s: %v\n", name, pkg.Path(), err)
			os.Exit(1)
		}
	}
	return diags, names
}

func standalone(patterns []string) int {
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "powerroute-vet: %v\n", err)
		return 1
	}
	total := 0
	for _, p := range pkgs {
		diags, names := runAnalyzers(p.Fset, p.Files, p.Types, p.Info)
		total += report(p.Fset, diags, names)
	}
	if total > 0 {
		return 1
	}
	return 0
}

// vetConfig is the JSON cmd/go hands a vet tool for each package (the
// x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "powerroute-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "powerroute-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite passes no facts between packages, but cmd/go requires the
	// facts file to exist before it will cache the package's result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "powerroute-vet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The suite checks shipped code only; go vet also feeds the tool
		// test-variant packages (the standalone mode never sees tests,
		// because plain `go list` GoFiles excludes them).
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "powerroute-vet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup), GoVersion: cfg.GoVersion}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "powerroute-vet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, names := runAnalyzers(fset, files, pkg, info)
	if report(fset, diags, names) > 0 {
		return 2
	}
	return 0
}
