package main

import (
	"path/filepath"
	"testing"

	"powerroute/internal/lint"
	"powerroute/internal/lint/analysis"
	"powerroute/internal/lint/load"
)

// TestRepoIsClean self-applies the analyzer suite to the whole module:
// the invariants powerroute-vet enforces must hold in the code that
// ships it. A failure here means a determinism or checkpoint-coverage
// regression landed (or needs an annotation with a justification).
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, p := range pkgs {
		for _, a := range lint.Analyzers() {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				t.Errorf("%s: [%s] %s", p.Fset.Position(d.Pos), a.Name, d.Message)
			}
			if _, err := a.Run(pass); err != nil {
				t.Fatalf("%s: %s: %v", a.Name, p.ImportPath, err)
			}
		}
	}
}
