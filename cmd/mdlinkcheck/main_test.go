package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree materializes a map of relative path → content under a
// fresh temp dir and returns the dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestCheckTreeCleanRepo(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "See [docs](docs/GUIDE.md), the [spec](/docs/GUIDE.md#anchor),\n" +
			"an [image](assets/x.png), [external](https://example.com/page.md),\n" +
			"a [mail](mailto:ops@example.com), and [this section](#local-anchor).\n" +
			"[ref]: docs/GUIDE.md\n",
		"docs/GUIDE.md": "Back to [readme](../README.md) and the [dir itself](..).\n",
		"assets/x.png":  "png",
	})
	probs, err := checkTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 0 {
		t.Errorf("clean tree reported %d problems: %v", len(probs), probs)
	}
}

func TestCheckTreeBrokenLinks(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md":     "A [gone](docs/MISSING.md) link and a [bad abs](/nowhere/x.md).\n",
		"docs/OTHER.md": "And [up](../also-missing.md).\n[dead]: ./dead.md\n",
	})
	probs, err := checkTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 4 {
		t.Fatalf("want 4 broken links, got %d: %v", len(probs), probs)
	}
	// Sorted by file then line: README first (line 1 twice), then docs/OTHER.md.
	if probs[0].file != "README.md" || probs[0].line != 1 || probs[0].target != "docs/MISSING.md" {
		t.Errorf("probs[0] = %+v", probs[0])
	}
	if probs[1].target != "/nowhere/x.md" {
		t.Errorf("probs[1] = %+v", probs[1])
	}
	if probs[2].file != "docs/OTHER.md" || probs[2].target != "../also-missing.md" {
		t.Errorf("probs[2] = %+v", probs[2])
	}
	if probs[3].line != 2 || probs[3].target != "./dead.md" {
		t.Errorf("probs[3] = %+v", probs[3])
	}
}

func TestCodeIsNotScanned(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "Prose about `[indexing](like-this.md)` stays code.\n" +
			"```\n[fenced](missing-in-fence.md)\n```\n" +
			"~~~\n[tilde-fenced](also-missing.md)\n~~~\n" +
			"But [after the fence](really-missing.md) counts.\n",
	})
	probs, err := checkTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 1 || probs[0].target != "really-missing.md" {
		t.Fatalf("want only the post-fence link, got %v", probs)
	}
}

func TestFragmentAndTitleHandling(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "[ok](docs/GUIDE.md#section), [titled](docs/GUIDE.md \"a title\"),\n" +
			"[gone](docs/NOPE.md#section)\n",
		"docs/GUIDE.md": "x\n",
	})
	probs, err := checkTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 1 || probs[0].target != "docs/NOPE.md#section" || probs[0].line != 2 {
		t.Fatalf("want one broken fragment link on line 2, got %v", probs)
	}
}

func TestSkippedDirectories(t *testing.T) {
	root := writeTree(t, map[string]string{
		"ok.md":                        "[fine](ok.md)\n",
		".git/broken.md":               "[gone](missing.md)\n",
		"internal/x/testdata/fix.md":   "[gone](missing.md)\n",
		"bin/notes.md":                 "[gone](missing.md)\n",
		"node_modules/pkg/weird.md":    "[gone](missing.md)\n",
		".hidden/deeply/nested/bad.md": "[gone](missing.md)\n",
	})
	probs, err := checkTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 0 {
		t.Errorf("skipped dirs leaked problems: %v", probs)
	}
}

// TestRepoLinksAreClean self-applies the checker to this repository,
// mirroring the blocking CI docs job.
func TestRepoLinksAreClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(filepath.Join(root, "go.mod")); statErr != nil {
		t.Skipf("repo root not found at %s", root)
	}
	probs, err := checkTree(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probs {
		t.Errorf("%s", p)
	}
}
