// Command mdlinkcheck verifies intra-repository markdown links.
//
// It walks a directory tree for .md files, extracts inline links,
// images, and reference-style definitions, and checks that every
// relative or repo-absolute target resolves to a file or directory
// that actually exists. External links (any URL with a scheme),
// in-page anchors (#...), code fences, and inline code spans are
// skipped: the tool's job is catching the link rot that file moves
// and renames cause inside the repo, not probing the network.
//
// Usage:
//
//	mdlinkcheck [root]
//
// root defaults to the current directory. Repo-absolute targets
// (/docs/FOO.md) resolve against root; relative targets resolve
// against the linking file's directory; a #fragment suffix is
// stripped before the existence check. Exit status is 1 if any
// link is broken, 0 otherwise.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// problem is one broken link occurrence.
type problem struct {
	file   string // path relative to root, slash-separated
	line   int    // 1-based line number
	target string // the link target as written
}

func (p problem) String() string {
	return fmt.Sprintf("%s:%d: broken link %q", p.file, p.line, p.target)
}

// inlineLink matches the (target) part of [text](target) and
// ![alt](target), tolerating an optional <...> wrapper and an
// optional "title". Nested parentheses in targets are not supported —
// none of this repo's links need them, and a miss here fails loud
// (the unresolved target shows up as broken), not silent.
var inlineLink = regexp.MustCompile(`\]\(\s*<?([^)<>\s]+)>?(?:\s+"[^"]*")?\s*\)`)

// refDef matches reference-style definitions: [label]: target
var refDef = regexp.MustCompile(`^\s*\[[^\]]+\]:\s+<?([^<>\s]+)>?`)

// inlineCode matches single-backtick code spans, removed before link
// extraction so `[i](x)` in prose about indexing is not a link.
var inlineCode = regexp.MustCompile("`[^`]*`")

// hasScheme reports whether the target is an absolute URL
// (http:, https:, mailto:, ...) rather than a filesystem path.
var hasScheme = regexp.MustCompile(`^[a-zA-Z][a-zA-Z0-9+.-]*:`)

// extractTargets returns the link targets found in one markdown
// document with their 1-based line numbers, skipping fenced code
// blocks and inline code spans.
func extractTargets(data string) []struct {
	line   int
	target string
} {
	var out []struct {
		line   int
		target string
	}
	inFence := false
	for i, line := range strings.Split(data, "\n") {
		trim := strings.TrimSpace(line)
		if strings.HasPrefix(trim, "```") || strings.HasPrefix(trim, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		scrubbed := inlineCode.ReplaceAllString(line, "")
		if m := refDef.FindStringSubmatch(scrubbed); m != nil {
			out = append(out, struct {
				line   int
				target string
			}{i + 1, m[1]})
			continue
		}
		for _, m := range inlineLink.FindAllStringSubmatch(scrubbed, -1) {
			out = append(out, struct {
				line   int
				target string
			}{i + 1, m[1]})
		}
	}
	return out
}

// checkFile returns the broken intra-repo links in one markdown file.
// relPath is the file's slash-separated path under root.
func checkFile(root, relPath, data string) []problem {
	var probs []problem
	for _, t := range extractTargets(data) {
		target := t.target
		if hasScheme.MatchString(target) || strings.HasPrefix(target, "//") {
			continue // external
		}
		if strings.HasPrefix(target, "#") {
			continue // in-page anchor
		}
		// Strip an anchor or query suffix; the existence check is on
		// the file itself.
		if i := strings.IndexAny(target, "#?"); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		var resolved string
		if strings.HasPrefix(target, "/") {
			resolved = filepath.Join(root, filepath.FromSlash(target))
		} else {
			resolved = filepath.Join(root, filepath.Dir(filepath.FromSlash(relPath)), filepath.FromSlash(target))
		}
		if _, err := os.Stat(resolved); err != nil {
			probs = append(probs, problem{file: relPath, line: t.line, target: t.target})
		}
	}
	return probs
}

// checkTree walks root for markdown files and returns every broken
// link, sorted by file then line. Hidden directories (.git, .github
// excepted), bin, and analyzer test fixtures are skipped.
func checkTree(root string) ([]problem, error) {
	var probs []problem
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path == root {
				return nil
			}
			if name == ".github" {
				return nil
			}
			if strings.HasPrefix(name, ".") || name == "testdata" || name == "bin" || name == "node_modules" {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(name), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		probs = append(probs, checkFile(root, filepath.ToSlash(rel), string(data))...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(probs, func(i, j int) bool {
		if probs[i].file != probs[j].file {
			return probs[i].file < probs[j].file
		}
		return probs[i].line < probs[j].line
	})
	return probs, nil
}

func main() {
	root := "."
	switch len(os.Args) {
	case 1:
	case 2:
		root = os.Args[1]
	default:
		fmt.Fprintln(os.Stderr, "usage: mdlinkcheck [root]")
		os.Exit(2)
	}
	probs, err := checkTree(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdlinkcheck:", err)
		os.Exit(2)
	}
	for _, p := range probs {
		fmt.Println(p)
	}
	if len(probs) > 0 {
		fmt.Fprintf(os.Stderr, "mdlinkcheck: %d broken link(s)\n", len(probs))
		os.Exit(1)
	}
}
