package main

import (
	"strings"
	"testing"
)

// TestList checks the registry listing path exits clean and names every
// paper figure.
func TestList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, id := range []string{"fig1", "fig20", "ablation-deadband", "ext-carbon", "ext-storage", "ext-peakshave"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

// TestRunTinyHorizon exercises the main experiment path against a shrunken
// world (1-month market, 2-day trace) so the smoke test stays fast.
func TestRunTinyHorizon(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-months", "1", "-days", "2", "-parallel", "2", "fig1", "fig2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"=== fig1:", "=== fig2:", "Google", "ERCOT"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunStorageTinyHorizon smokes the storage experiments against the
// shrunken world: both must render their tables through the parallel
// runner.
func TestRunStorageTinyHorizon(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-months", "1", "-days", "2", "-parallel", "2", "ext-storage", "ext-peakshave"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"=== ext-storage:", "=== ext-peakshave:", "Bought (GWh)", "Demand charge"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestUnknownExperiment checks the error path exits non-zero without
// building the world.
func TestUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"nope"}, &out, &errOut); code == 0 {
		t.Fatal("expected non-zero exit for unknown experiment")
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr missing diagnostic: %s", errOut.String())
	}
}

// TestNoArgsUsage checks bare invocation prints usage and exits 2.
func TestNoArgsUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Errorf("stderr missing usage: %s", errOut.String())
	}
}
