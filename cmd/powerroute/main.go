// Command powerroute regenerates the paper's tables and figures from the
// synthetic world.
//
// Usage:
//
//	powerroute [-seed N] list
//	powerroute [-seed N] <experiment-id> [<experiment-id>...]
//	powerroute [-seed N] all
//
// Experiment IDs follow the paper's figure numbers (fig1 … fig20) plus the
// ablations documented in DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"powerroute/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", experiments.DefaultSeed, "world seed (regenerates all synthetic data)")
	timing := flag.Bool("time", false, "print per-experiment wall time")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	if args[0] == "list" {
		for _, d := range experiments.All() {
			fmt.Printf("%-18s %s\n", d.ID, d.Title)
		}
		return
	}

	var ids []string
	if args[0] == "all" {
		ids = experiments.IDs()
	} else {
		ids = args
	}
	env, err := experiments.NewEnv(*seed)
	if err != nil {
		fatal(err)
	}
	for _, id := range ids {
		def, ok := experiments.Get(id)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (try 'powerroute list')", id))
		}
		start := time.Now()
		res, err := def.Run(env)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Printf("=== %s: %s ===\n", res.ID, res.Title)
		fmt.Println(res.Text)
		if *timing {
			fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `powerroute — reproduce "Cutting the Electric Bill for Internet-Scale Systems"

usage:
  powerroute [-seed N] list                    list experiments
  powerroute [-seed N] <id> [<id>...]          run specific experiments
  powerroute [-seed N] all                     run everything
  powerroute [-seed N] -time <id>              report wall time too
`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "powerroute:", err)
	os.Exit(1)
}
