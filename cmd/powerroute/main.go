// Command powerroute regenerates the paper's tables and figures from the
// synthetic world.
//
// Usage:
//
//	powerroute [-seed N] [-parallel N] list
//	powerroute [-seed N] [-parallel N] <experiment-id> [<experiment-id>...]
//	powerroute [-seed N] [-parallel N] all
//
// Experiment IDs follow the paper's figure numbers (fig1 … fig20) plus the
// ablations documented in DESIGN.md and the extension experiments
// (ext-carbon, ext-demand, ext-joint, ext-storage, ext-peakshave — the
// last two add site batteries and demand-charge tariffs on top of the
// routing results). Experiment dispatch and each experiment's internal
// parameter sweep independently bound their worker count by -parallel
// (default: the number of CPUs); output is rendered in registry order and
// is byte-identical to a serial run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"powerroute/internal/core"
	"powerroute/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main path: it parses argv, assembles the world, and
// streams the selected experiments to stdout. It returns the process exit
// code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("powerroute", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", experiments.DefaultSeed, "world seed (regenerates all synthetic data)")
	timing := fs.Bool("time", false, "print per-experiment wall time")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker count for experiments and sweeps (1 = serial)")
	months := fs.Int("months", 0, "override market history length in months (0 = the paper's 39)")
	days := fs.Int("days", 0, "override traffic trace length in days (0 = the paper's 24)")
	fs.Usage = func() { usage(stderr) }
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	args := fs.Args()
	if len(args) == 0 {
		usage(stderr)
		return 2
	}

	if args[0] == "list" {
		for _, d := range experiments.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", d.ID, d.Title)
		}
		return 0
	}

	var ids []string
	if args[0] == "all" {
		ids = experiments.IDs()
	} else {
		ids = args
	}
	defs := make([]experiments.Definition, 0, len(ids))
	for _, id := range ids {
		def, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintln(stderr, "powerroute:", fmt.Errorf("unknown experiment %q (try 'powerroute list')", id))
			return 1
		}
		defs = append(defs, def)
	}
	experiments.SetParallelism(*parallel)
	env, err := experiments.NewEnvWith(core.Options{Seed: *seed, MarketMonths: *months, TraceDays: *days})
	if err != nil {
		fmt.Fprintln(stderr, "powerroute:", err)
		return 1
	}
	err = experiments.RunStream(env, defs, *parallel, func(res *experiments.Result, took time.Duration) error {
		fmt.Fprintf(stdout, "=== %s: %s ===\n", res.ID, res.Title)
		fmt.Fprintln(stdout, res.Text)
		if *timing {
			fmt.Fprintf(stdout, "(%s took %v)\n\n", res.ID, took.Round(time.Millisecond))
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(stderr, "powerroute:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `powerroute — reproduce "Cutting the Electric Bill for Internet-Scale Systems"

usage:
  powerroute [-seed N] list                    list experiments
  powerroute [-seed N] <id> [<id>...]          run specific experiments
  powerroute [-seed N] all                     run everything
  powerroute ext-storage ext-peakshave         battery & demand-charge extensions
  powerroute [-seed N] -time <id>              report wall time too
  powerroute -parallel N <id>                  bound the worker pool (1 = serial)
  powerroute -months M -days D <id>            shrink the world (fast iteration)
`)
}
