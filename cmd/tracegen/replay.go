package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"powerroute/internal/market"
	"powerroute/internal/server"
	"powerroute/internal/timeseries"
	"powerroute/internal/traffic"
)

// replay regenerates the synthetic world and streams it through a running
// powerrouted daemon: the hourly hub price history via POST /v1/prices and
// the long-run hour-of-week demand via POST /v1/demand, in binary batches
// of `batch` steps, `loops` passes over the price horizon. Each price
// chunk is posted before the demand chunk that references it, so the
// daemon's decision lookups (reaction delay included) always resolve.
//
// With speedup 0 the replay free-runs, which makes it a throughput
// benchmark: the routed-steps-per-second figure it prints is the daemon's
// sustained decision rate including ingest parsing and HTTP overhead.
func replay(stdout io.Writer, baseURL string, seed int64, months, days, batch, loops int, speedup float64) error {
	if batch <= 0 {
		return fmt.Errorf("replay: non-positive batch size %d", batch)
	}
	if loops <= 0 {
		return fmt.Errorf("replay: non-positive loop count %d", loops)
	}
	mkt, err := market.Generate(market.Config{Seed: seed, Months: months})
	if err != nil {
		return err
	}
	tr, err := traffic.Generate(traffic.Config{Seed: seed + 1, Days: days})
	if err != nil {
		return err
	}
	lr := tr.LongRun()

	hubs := mkt.Hubs()
	hubIDs := make([]string, len(hubs))
	rts := make([]*timeseries.Series, len(hubs))
	for i, h := range hubs {
		hubIDs[i] = h.ID
		s, err := mkt.RT(h.ID)
		if err != nil {
			return err
		}
		rts[i] = s
	}
	ns := len(tr.States)
	step := timeseries.Hourly
	start := mkt.Start
	horizon := mkt.Hours
	total := horizon * loops

	client := &http.Client{Timeout: 5 * time.Minute}
	fmt.Fprintf(stdout, "replay: %d hourly steps (%d-pass %d-month horizon), %d hubs, %d states, batch %d\n",
		total, loops, months, len(hubs), ns, batch)

	priceRow := make([]float64, len(hubIDs))
	demandRow := make([]float64, ns)
	rowBuf := make([]byte, 0, 8*max(len(hubIDs), ns))
	routed := 0
	t0 := time.Now()
	for off := 0; off < total; off += batch {
		n := min(batch, total-off)
		chunkStart := start.Add(time.Duration(off) * step)

		var pb bytes.Buffer
		if err := server.WriteBatchHeader(&pb, "prices", chunkStart, step, n, len(hubIDs), hubIDs); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			idx := (off + i) % horizon
			for j, rt := range rts {
				priceRow[j] = rt.Values[idx]
			}
			pb.Write(server.AppendRow(rowBuf[:0], priceRow))
		}
		if err := post(client, baseURL+"/v1/prices", server.ContentTypePricesBatch, &pb); err != nil {
			return fmt.Errorf("replay: price chunk at %v: %w", chunkStart, err)
		}

		var db bytes.Buffer
		if err := server.WriteBatchHeader(&db, "demand", chunkStart, step, n, ns, nil); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			demandRow = lr.Rates(chunkStart.Add(time.Duration(i)*step), demandRow)
			db.Write(server.AppendRow(rowBuf[:0], demandRow))
		}
		if err := post(client, baseURL+"/v1/demand", server.ContentTypeDemandBatch, &db); err != nil {
			return fmt.Errorf("replay: demand chunk at %v: %w", chunkStart, err)
		}
		routed += n
		if speedup > 0 {
			time.Sleep(time.Duration(float64(n) * float64(step) / speedup))
		}
	}
	elapsed := time.Since(t0)

	status, err := getStatus(client, baseURL)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "replay: routed %d steps in %v (%.0f steps/s)\n",
		routed, elapsed.Round(time.Millisecond), float64(routed)/elapsed.Seconds())
	fmt.Fprintf(stdout, "replay: daemon at %d steps, total cost $%.2f, energy %.1f MWh\n",
		status.Steps, status.TotalCostUSD, status.TotalEnergyMWh)
	return nil
}

// post sends one ingest body and fails on any non-2xx response, surfacing
// the daemon's JSON error message.
func post(client *http.Client, url, contentType string, body io.Reader) error {
	resp, err := client.Post(url, contentType, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// daemonStatus is the slice of /v1/status the replay summary reports.
type daemonStatus struct {
	Steps          int     `json:"steps"`
	TotalCostUSD   float64 `json:"total_cost_usd"`
	TotalEnergyMWh float64 `json:"total_energy_mwh"`
}

func getStatus(client *http.Client, baseURL string) (*daemonStatus, error) {
	resp, err := client.Get(baseURL + "/v1/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status: %s", resp.Status)
	}
	status := new(daemonStatus)
	if err := json.NewDecoder(resp.Body).Decode(status); err != nil {
		return nil, fmt.Errorf("status: decoding response: %w", err)
	}
	return status, nil
}
