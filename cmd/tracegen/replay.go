package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"powerroute/internal/core"
	"powerroute/internal/market"
	"powerroute/internal/routing"
	"powerroute/internal/server"
	"powerroute/internal/sim"
	"powerroute/internal/timeseries"
	"powerroute/internal/traffic"
)

// replayOptions configures one replay run against a powerrouted daemon.
type replayOptions struct {
	Seed         int64
	Months, Days int
	Batch, Loops int
	Speedup      float64

	// KillAfter, when positive, stops the replay after routing that many
	// steps: the load-generator half of a crash-recovery drill (replay
	// part of the horizon, kill the daemon, restart it with -restore).
	KillAfter int
	// Resume picks up a partially replayed horizon: the replay asks the
	// daemon which step it expects next and starts there, first re-posting
	// enough price history to cover the reaction-delay lookback, so a
	// resumed run's decision prices are bit-identical to an uninterrupted
	// one's. Use it against a daemon restarted with -restore (or restored
	// via PUT /v1/checkpoint), whose price feed starts empty.
	Resume bool

	// Shards, when non-empty, bypasses the replay target for ingest and
	// drives these powerrouted shard instances directly and concurrently:
	// each price chunk goes to every shard verbatim (shards ignore foreign
	// hubs), each demand chunk is split by state ownership discovered from
	// the shards' /v1/world. The -replay URL is then the coordinator,
	// queried only for the merged fleet-wide status.
	Shards []string

	// BurstHubs switches the replay from the paper's derived world to the
	// burst-exact clique world (core.BurstWorld) the daemons were started
	// with via the matching -burst-hubs flag: comonotone demand rows
	// instead of the long-run trace. In sharded mode the replay is also
	// the lease broker — it computes the fleet-wide burst gate bit for
	// every step from the full demand row and posts the lease window to
	// each shard before the demand chunk that consumes it.
	BurstHubs string
	// ThresholdKm is the routing proximity threshold the daemons run with;
	// the burst world's geometry (and so its soft caps) depends on it.
	ThresholdKm float64

	// Jobs, when set, folds a deterministic deferrable-job load into the
	// demand replay (the -batch-spec flag): at every absolute step that is
	// a multiple of Every, each cluster the target serves receives one job
	// of KWh energy due Slack steps later with partial-execution floor
	// Floor. Keying to absolute steps makes the load a pure function of
	// the step number, so kill/resume drills regenerate it bit-identically.
	Jobs *jobSpec
}

// jobSpec is the parsed -batch-spec replay flag.
type jobSpec struct {
	Every int
	KWh   float64
	Slack int
	Floor float64
}

// parseJobSpec parses every=N,kwh=E,slack=S,floor=F (all four required).
func parseJobSpec(spec string) (*jobSpec, error) {
	js := &jobSpec{}
	seen := make(map[string]bool, 4)
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("malformed -batch-spec field %q (want key=value)", field)
		}
		seen[key] = true
		var err error
		switch key {
		case "every":
			js.Every, err = strconv.Atoi(val)
		case "kwh":
			js.KWh, err = strconv.ParseFloat(val, 64)
		case "slack":
			js.Slack, err = strconv.Atoi(val)
		case "floor":
			js.Floor, err = strconv.ParseFloat(val, 64)
		default:
			return nil, fmt.Errorf("unknown -batch-spec field %q (want every, kwh, slack, floor)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("-batch-spec %s: %v", key, err)
		}
	}
	for _, key := range []string{"every", "kwh", "slack", "floor"} {
		if !seen[key] {
			return nil, fmt.Errorf("-batch-spec is missing %s=", key)
		}
	}
	if js.Every < 1 {
		return nil, fmt.Errorf("-batch-spec every=%d (want >= 1)", js.Every)
	}
	if !(js.KWh > 0) || math.IsInf(js.KWh, 0) {
		return nil, fmt.Errorf("-batch-spec kwh=%g (want a positive energy)", js.KWh)
	}
	if js.Slack < 1 {
		return nil, fmt.Errorf("-batch-spec slack=%d (want >= 1)", js.Slack)
	}
	if !(js.Floor >= 0 && js.Floor <= 1) {
		return nil, fmt.Errorf("-batch-spec floor=%g (want a fraction in [0, 1])", js.Floor)
	}
	return js, nil
}

// replay regenerates the synthetic world and streams it through a running
// powerrouted daemon: the hourly hub price history via POST /v1/prices and
// the long-run hour-of-week demand via POST /v1/demand, in binary batches
// of opt.Batch steps, opt.Loops passes over the price horizon. Each price
// chunk is posted before the demand chunk that references it, so the
// daemon's decision lookups (reaction delay included) always resolve.
//
// With speedup 0 the replay free-runs, which makes it a throughput
// benchmark: the routed-steps-per-second figure it prints is the daemon's
// sustained decision rate including ingest parsing and HTTP overhead.
func replay(stdout io.Writer, baseURL string, opt replayOptions) error {
	if opt.Batch <= 0 {
		return fmt.Errorf("replay: non-positive batch size %d", opt.Batch)
	}
	if opt.Loops <= 0 {
		return fmt.Errorf("replay: non-positive loop count %d", opt.Loops)
	}
	if opt.KillAfter < 0 {
		return fmt.Errorf("replay: negative kill-after %d", opt.KillAfter)
	}
	mkt, err := market.Generate(market.Config{Seed: opt.Seed, Months: opt.Months})
	if err != nil {
		return err
	}
	tr, err := traffic.Generate(traffic.Config{Seed: opt.Seed + 1, Days: opt.Days})
	if err != nil {
		return err
	}
	var demand sim.DemandSource = tr.LongRun()

	// Burst mode: regenerate the burst-exact world the daemons serve (same
	// seed, same flags → bit-identical fleet, caps, and demand) and, when
	// sharded, precompute the broker state for lease posts.
	var leaseRoom float64
	brokering := false
	if opt.BurstHubs != "" {
		if opt.Jobs != nil {
			return fmt.Errorf("replay: -burst-hubs and -batch-spec are not supported together")
		}
		pairs, err := core.ParseBurstHubs(opt.BurstHubs)
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		sys, err := core.NewSystem(core.Options{Seed: opt.Seed, MarketMonths: opt.Months, TraceDays: opt.Days})
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		bw, err := sys.BurstWorld(pairs, opt.ThresholdKm, routing.DefaultPriceThreshold)
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		demand = bw.Demand
		if leaseRoom, err = sim.BurstRoomTotal(bw.Fleet, bw.SoftCaps); err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		brokering = len(opt.Shards) > 0
	}

	hubs := mkt.Hubs()
	hubIDs := make([]string, len(hubs))
	rts := make([]*timeseries.Series, len(hubs))
	for i, h := range hubs {
		hubIDs[i] = h.ID
		s, err := mkt.RT(h.ID)
		if err != nil {
			return err
		}
		rts[i] = s
	}
	ns := len(tr.States)
	step := timeseries.Hourly
	start := mkt.Start
	horizon := mkt.Hours
	total := horizon * opt.Loops

	client := &http.Client{Timeout: 5 * time.Minute}

	// Ingest targets: the replay URL itself, or — sharded mode — every
	// powerrouted shard directly, each receiving only its own states'
	// demand columns. Shards ingest concurrently; within one shard the
	// price chunk always lands before the demand chunk that references it.
	type ingestTarget struct {
		url      string
		cols     []int // demand columns (nil = the full state vector)
		clusters int   // engine-local cluster count (jobs mode only)
	}
	targets := []ingestTarget{{url: baseURL}}
	if len(opt.Shards) > 0 {
		if opt.Resume || opt.KillAfter > 0 {
			return fmt.Errorf("replay: -resume/-kill-after are not supported with -shards (drive shards individually instead)")
		}
		// When the replay target is a coordinator, its shard list must
		// cover the same partition as the -shards flag — a count mismatch
		// means the merged status would silently describe a different
		// fleet split than the one being driven.
		if world, err := getWorld(client, baseURL); err == nil && len(world.Shards) > 0 && len(world.Shards) != len(opt.Shards) {
			return fmt.Errorf("replay: -shards lists %d URLs but the coordinator at %s partitions the world into %d shards (%s)",
				len(opt.Shards), baseURL, len(world.Shards), strings.Join(world.Shards, ", "))
		}
		stateIdx := make(map[string]int, ns)
		for i, sd := range tr.States {
			stateIdx[sd.State.Code] = i
		}
		owner := make([]int, ns)
		for i := range owner {
			owner[i] = -1
		}
		targets = targets[:0]
		for si, url := range opt.Shards {
			world, err := getWorld(client, url)
			if err != nil {
				return fmt.Errorf("replay: shard %s: %w", url, err)
			}
			if got := time.Duration(world.StepSeconds * float64(time.Second)); got != step {
				return fmt.Errorf("replay: shard %s steps %v, replay generates %v", url, got, step)
			}
			cols := make([]int, 0, len(world.States))
			for _, code := range world.States {
				s, ok := stateIdx[code]
				if !ok {
					return fmt.Errorf("replay: shard %s serves unknown state %q", url, code)
				}
				if owner[s] != -1 {
					return fmt.Errorf("replay: state %q claimed by two shards", code)
				}
				owner[s] = si
				cols = append(cols, s)
			}
			targets = append(targets, ingestTarget{url: url, cols: cols})
		}
		for s, o := range owner {
			if o == -1 {
				return fmt.Errorf("replay: no shard serves state %q", tr.States[s].State.Code)
			}
		}
	}

	// Jobs ride demand rows addressed by engine-local cluster index, so
	// each target's job blocks are generated against its own cluster list
	// (a shard's world names only the clusters it serves).
	if opt.Jobs != nil {
		for ti := range targets {
			world, err := getWorld(client, targets[ti].url)
			if err != nil {
				return fmt.Errorf("replay: %s: %w", targets[ti].url, err)
			}
			if len(world.Clusters) == 0 {
				return fmt.Errorf("replay: %s reports no clusters; cannot address jobs", targets[ti].url)
			}
			targets[ti].clusters = len(world.Clusters)
		}
	}

	// postChunk streams rows [off, off+n) of the (cyclic) price horizon
	// and, when withDemand is set, the matching demand rows — to every
	// target concurrently.
	priceRow := make([]float64, len(hubIDs))
	rowBuf := make([]byte, 0, 8*max(len(hubIDs), ns))
	demandRow := make([]float64, ns)
	subRow := make([]float64, ns)
	var jobRow []server.WireJob
	var jobBuf []byte
	postChunk := func(off, n int, withDemand bool) error {
		chunkStart := start.Add(time.Duration(off) * step)
		var pb bytes.Buffer
		if err := server.WriteBatchHeader(&pb, "prices", chunkStart, step, n, len(hubIDs), hubIDs); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			idx := (off + i) % horizon
			for j, rt := range rts {
				priceRow[j] = rt.Values[idx]
			}
			pb.Write(server.AppendRow(rowBuf[:0], priceRow))
		}
		prices := pb.Bytes()

		demands := make([][]byte, len(targets))
		var gates []bool
		if brokering && withDemand {
			gates = make([]bool, n)
		}
		if withDemand {
			bufs := make([]*bytes.Buffer, len(targets))
			for ti, tg := range targets {
				cols := ns
				if tg.cols != nil {
					cols = len(tg.cols)
				}
				bufs[ti] = &bytes.Buffer{}
				var herr error
				if opt.Jobs != nil {
					herr = server.WriteJobsBatchHeader(bufs[ti], chunkStart, step, n, cols)
				} else {
					herr = server.WriteBatchHeader(bufs[ti], "demand", chunkStart, step, n, cols, nil)
				}
				if herr != nil {
					return herr
				}
			}
			for i := 0; i < n; i++ {
				demandRow = demand.Rates(chunkStart.Add(time.Duration(i)*step), demandRow)
				if gates != nil {
					gates[i] = sim.BurstGateOpen(sim.SumDemand(demandRow), leaseRoom)
				}
				for ti, tg := range targets {
					if opt.Jobs != nil {
						// The job load is a pure function of the absolute
						// step number, so resumed replays regenerate it.
						jobRow = jobRow[:0]
						if (off+i)%opt.Jobs.Every == 0 {
							for c := 0; c < tg.clusters; c++ {
								jobRow = append(jobRow, server.WireJob{
									Cluster:       uint32(c),
									DeadlineSteps: uint32(opt.Jobs.Slack),
									EnergyKWh:     opt.Jobs.KWh,
									MinFraction:   opt.Jobs.Floor,
								})
							}
						}
						jobBuf = server.AppendJobs(jobBuf[:0], jobRow)
						bufs[ti].Write(jobBuf)
					}
					row := demandRow
					if tg.cols != nil {
						row = subRow[:len(tg.cols)]
						for k, s := range tg.cols {
							row[k] = demandRow[s]
						}
					}
					bufs[ti].Write(server.AppendRow(rowBuf[:0], row))
				}
			}
			for ti, b := range bufs {
				demands[ti] = b.Bytes()
			}
		}

		// The lease window every shard must hold before its demand chunk
		// arrives: the fleet-wide burst gate bit per step, computed from
		// the full demand row no single shard sees.
		var leaseBody []byte
		if gates != nil {
			body, err := json.Marshal(struct {
				From  int    `json:"from"`
				Gates []bool `json:"gates"`
			}{From: off, Gates: gates})
			if err != nil {
				return err
			}
			leaseBody = body
		}

		errs := make([]error, len(targets))
		var wg sync.WaitGroup
		for ti, tg := range targets {
			wg.Add(1)
			go func(ti int, tg ingestTarget) {
				defer wg.Done()
				if err := post(client, tg.url+"/v1/prices", server.ContentTypePricesBatch, bytes.NewReader(prices)); err != nil {
					errs[ti] = fmt.Errorf("replay: price chunk at %v to %s: %w", chunkStart, tg.url, err)
					return
				}
				if leaseBody != nil {
					if err := post(client, tg.url+"/v1/leases", "application/json", bytes.NewReader(leaseBody)); err != nil {
						errs[ti] = fmt.Errorf("replay: lease window at step %d to %s: %w", off, tg.url, err)
						return
					}
				}
				if withDemand {
					if err := post(client, tg.url+"/v1/demand", server.ContentTypeDemandBatch, bytes.NewReader(demands[ti])); err != nil {
						errs[ti] = fmt.Errorf("replay: demand chunk at %v to %s: %w", chunkStart, tg.url, err)
					}
				}
			}(ti, tg)
		}
		wg.Wait()
		return errors.Join(errs...)
	}

	startOff := 0
	if opt.Resume {
		status, err := getStatus(client, baseURL)
		if err != nil {
			return err
		}
		world, err := getWorld(client, baseURL)
		if err != nil {
			return err
		}
		if got := time.Duration(world.StepSeconds * float64(time.Second)); got != step {
			return fmt.Errorf("replay: daemon steps %v, replay generates %v", got, step)
		}
		startOff = status.Steps
		if startOff > total {
			return fmt.Errorf("replay: daemon already at step %d, beyond the %d-step horizon", startOff, total)
		}
		// Re-post the price history the daemon's decision lookups will
		// reach back into: a restored daemon starts with an empty feed,
		// and without the lookback rows its first decisions would clamp to
		// the resume point instead of seeing delay-lagged prices.
		delay := time.Duration(world.ReactionDelaySeconds * float64(time.Second))
		lead := int((delay + step - 1) / step)
		if lead > startOff {
			lead = startOff
		}
		if lead > 0 {
			if err := postChunk(startOff-lead, lead, false); err != nil {
				return err
			}
		}
	}
	end := total
	if opt.KillAfter > 0 && startOff+opt.KillAfter < end {
		end = startOff + opt.KillAfter
	}

	fmt.Fprintf(stdout, "replay: steps [%d, %d) of %d (%d-pass %d-month horizon), %d hubs, %d states, batch %d\n",
		startOff, end, total, opt.Loops, opt.Months, len(hubs), ns, opt.Batch)

	routed := 0
	t0 := time.Now()
	for off := startOff; off < end; off += opt.Batch {
		n := min(opt.Batch, end-off)
		if err := postChunk(off, n, true); err != nil {
			return err
		}
		routed += n
		if opt.Speedup > 0 {
			time.Sleep(time.Duration(float64(n) * float64(step) / opt.Speedup))
		}
	}
	elapsed := time.Since(t0)

	statusURL := baseURL + "/v1/status"
	if len(opt.Shards) > 0 {
		// The coordinator's status is a merged view of the shards' durable
		// checkpoints; force a fresh pull so the summary reflects the steps
		// just routed.
		statusURL += "?refresh=1"
	}
	status, err := getStatusFrom(client, statusURL)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "replay: routed %d steps in %v (%.0f steps/s)\n",
		routed, elapsed.Round(time.Millisecond), float64(routed)/elapsed.Seconds())
	fmt.Fprintf(stdout, "replay: daemon at %d steps, total cost $%.2f, energy %.1f MWh\n",
		status.Steps, status.TotalCostUSD, status.TotalEnergyMWh)
	return nil
}

// post sends one ingest body and fails on any non-2xx response, surfacing
// the daemon's JSON error message.
func post(client *http.Client, url, contentType string, body io.Reader) error {
	resp, err := client.Post(url, contentType, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// daemonStatus is the slice of /v1/status the replay summary reports.
type daemonStatus struct {
	Steps          int     `json:"steps"`
	TotalCostUSD   float64 `json:"total_cost_usd"`
	TotalEnergyMWh float64 `json:"total_energy_mwh"`
}

func getStatus(client *http.Client, baseURL string) (*daemonStatus, error) {
	return getStatusFrom(client, baseURL+"/v1/status")
}

func getStatusFrom(client *http.Client, url string) (*daemonStatus, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status: %s", resp.Status)
	}
	status := new(daemonStatus)
	if err := json.NewDecoder(resp.Body).Decode(status); err != nil {
		return nil, fmt.Errorf("status: decoding response: %w", err)
	}
	return status, nil
}

// daemonWorld is the slice of /v1/world the replay needs: the step
// geometry, the reaction delay whose lookback the resume path must
// re-cover, and — for sharded ingest — the states the daemon serves.
type daemonWorld struct {
	StepSeconds          float64  `json:"step_seconds"`
	ReactionDelaySeconds float64  `json:"reaction_delay_seconds"`
	States               []string `json:"states"`
	Shards               []string `json:"shards"`
	Clusters             []struct {
		Code string `json:"code"`
	} `json:"clusters"`
}

func getWorld(client *http.Client, baseURL string) (*daemonWorld, error) {
	resp, err := client.Get(baseURL + "/v1/world")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("world: %s", resp.Status)
	}
	world := new(daemonWorld)
	if err := json.NewDecoder(resp.Body).Decode(world); err != nil {
		return nil, fmt.Errorf("world: decoding response: %w", err)
	}
	return world, nil
}
