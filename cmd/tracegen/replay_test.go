package main

import (
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/routing"
	"powerroute/internal/server"
	"powerroute/internal/sim"
)

// replayWorld assembles the daemon side of a replay: the same world the
// generator will regenerate, wrapped in an engine and HTTP server.
func replayWorld(t *testing.T, seed int64, months, days int) (*server.Server, *httptest.Server, sim.Scenario) {
	t.Helper()
	sys, err := core.NewSystem(core.Options{Seed: seed, MarketMonths: months, TraceDays: days})
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.Scenario{
		Fleet:         sys.Fleet,
		Energy:        energy.OptimisticFuture,
		Market:        sys.Market,
		Demand:        sys.LongRun,
		Start:         sys.Market.Start,
		Steps:         sys.Market.Hours,
		Step:          time.Hour,
		ReactionDelay: sim.DefaultReactionDelay,
	}
	opt, err := routing.NewPriceOptimizer(sys.Fleet, 1500, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sc.Policy = opt
	eng, err := sim.NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, sc
}

// TestReplayMatchesBatchRun is the online/batch equivalence check at full
// system scope: replaying the world through powerrouted's HTTP ingest
// (binary batches, price feed with reaction delay) must leave the daemon's
// engine with the exact Result — bit for bit — that the batch sim.Run
// produces for the same scenario.
func TestReplayMatchesBatchRun(t *testing.T) {
	const (
		seed   = int64(42)
		months = 1
		days   = 7
	)
	srv, ts, sc := replayWorld(t, seed, months, days)

	var out strings.Builder
	// Batch size deliberately misaligned with the horizon so chunk
	// boundaries land mid-feed.
	if err := replay(&out, ts.URL, seed, months, days, 100, 1, 0); err != nil {
		t.Fatal(err)
	}
	online, err := srv.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	// Fresh policy: the served engine's optimizer carries its order cache.
	opt, err := routing.NewPriceOptimizer(sc.Fleet, 1500, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sc.Policy = opt
	batch, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(online, batch) {
		t.Fatalf("online replay diverged from batch Run:\nonline: %+v\nbatch:  %+v", online, batch)
	}
	if !strings.Contains(out.String(), "routed") {
		t.Errorf("replay summary missing, got %q", out.String())
	}
}

// TestReplayLoops: a second pass over the price horizon keeps routing
// (periodic demand, cyclic prices) and doubles the step count.
func TestReplayLoops(t *testing.T) {
	srv, ts, sc := replayWorld(t, 7, 1, 7)
	var out strings.Builder
	if err := replay(&out, ts.URL, 7, 1, 7, 512, 2, 0); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * sc.Steps; res.Steps != want {
		t.Fatalf("looped replay routed %d steps, want %d", res.Steps, want)
	}
	if res.TotalCost <= 0 {
		t.Fatal("looped replay billed nothing")
	}
}

// TestReplayArgumentValidation: bad knobs fail before any traffic.
func TestReplayArgumentValidation(t *testing.T) {
	var out strings.Builder
	if err := replay(&out, "http://127.0.0.1:1", 1, 1, 1, 0, 1, 0); err == nil {
		t.Error("batch 0 accepted")
	}
	if err := replay(&out, "http://127.0.0.1:1", 1, 1, 1, 16, 0, 0); err == nil {
		t.Error("loop 0 accepted")
	}
}
