package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/routing"
	"powerroute/internal/server"
	"powerroute/internal/sim"
)

// replayWorld assembles the daemon side of a replay: the same world the
// generator will regenerate, wrapped in an engine and HTTP server.
func replayWorld(t *testing.T, seed int64, months, days int) (*server.Server, *httptest.Server, sim.Scenario) {
	t.Helper()
	sys, err := core.NewSystem(core.Options{Seed: seed, MarketMonths: months, TraceDays: days})
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.Scenario{
		Fleet:         sys.Fleet,
		Energy:        energy.OptimisticFuture,
		Market:        sys.Market,
		Demand:        sys.LongRun,
		Start:         sys.Market.Start,
		Steps:         sys.Market.Hours,
		Step:          time.Hour,
		ReactionDelay: sim.DefaultReactionDelay,
	}
	opt, err := routing.NewPriceOptimizer(sys.Fleet, 1500, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sc.Policy = opt
	eng, err := sim.NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, sc
}

// TestReplayMatchesBatchRun is the online/batch equivalence check at full
// system scope: replaying the world through powerrouted's HTTP ingest
// (binary batches, price feed with reaction delay) must leave the daemon's
// engine with the exact Result — bit for bit — that the batch sim.Run
// produces for the same scenario.
func TestReplayMatchesBatchRun(t *testing.T) {
	const (
		seed   = int64(42)
		months = 1
		days   = 7
	)
	srv, ts, sc := replayWorld(t, seed, months, days)

	var out strings.Builder
	// Batch size deliberately misaligned with the horizon so chunk
	// boundaries land mid-feed.
	if err := replay(&out, ts.URL, replayOptions{Seed: seed, Months: months, Days: days, Batch: 100, Loops: 1}); err != nil {
		t.Fatal(err)
	}
	online, err := srv.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	// Fresh policy: the served engine's optimizer carries its order cache.
	opt, err := routing.NewPriceOptimizer(sc.Fleet, 1500, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sc.Policy = opt
	batch, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(online, batch) {
		t.Fatalf("online replay diverged from batch Run:\nonline: %+v\nbatch:  %+v", online, batch)
	}
	if !strings.Contains(out.String(), "routed") {
		t.Errorf("replay summary missing, got %q", out.String())
	}
}

// TestReplayLoops: a second pass over the price horizon keeps routing
// (periodic demand, cyclic prices) and doubles the step count.
func TestReplayLoops(t *testing.T) {
	srv, ts, sc := replayWorld(t, 7, 1, 7)
	var out strings.Builder
	if err := replay(&out, ts.URL, replayOptions{Seed: 7, Months: 1, Days: 7, Batch: 512, Loops: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * sc.Steps; res.Steps != want {
		t.Fatalf("looped replay routed %d steps, want %d", res.Steps, want)
	}
	if res.TotalCost <= 0 {
		t.Fatal("looped replay billed nothing")
	}
}

// TestReplayArgumentValidation: bad knobs fail before any traffic.
func TestReplayArgumentValidation(t *testing.T) {
	var out strings.Builder
	if err := replay(&out, "http://127.0.0.1:1", replayOptions{Seed: 1, Months: 1, Days: 1, Batch: 0, Loops: 1}); err == nil {
		t.Error("batch 0 accepted")
	}
	if err := replay(&out, "http://127.0.0.1:1", replayOptions{Seed: 1, Months: 1, Days: 1, Batch: 16, Loops: 0}); err == nil {
		t.Error("loop 0 accepted")
	}
	if err := replay(&out, "http://127.0.0.1:1", replayOptions{Seed: 1, Months: 1, Days: 1, Batch: 16, Loops: 1, KillAfter: -1}); err == nil {
		t.Error("negative kill-after accepted")
	}
}

// TestReplayKillRestoreResume is the crash-recovery drill at full system
// scope, minus the process kill (the CI e2e job does that part in anger):
// replay half the horizon into daemon A, snapshot it over GET
// /v1/checkpoint, restore the snapshot into a fresh daemon B over PUT
// /v1/checkpoint (empty price feed, exactly like a -restore restart), and
// finish the horizon with -resume. Daemon B's final Result must be
// bit-for-bit the uninterrupted batch Run's.
func TestReplayKillRestoreResume(t *testing.T) {
	const (
		seed   = int64(42)
		months = 1
		days   = 7
	)
	_, tsA, sc := replayWorld(t, seed, months, days)
	half := sc.Steps / 2
	var out strings.Builder
	if err := replay(&out, tsA.URL, replayOptions{Seed: seed, Months: months, Days: days, Batch: 100, Loops: 1, KillAfter: half}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(tsA.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	snapshot, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/checkpoint: %d: %s", resp.StatusCode, snapshot)
	}

	srvB, tsB, _ := replayWorld(t, seed, months, days)
	req, err := http.NewRequest(http.MethodPut, tsB.URL+"/v1/checkpoint", bytes.NewReader(snapshot))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", server.ContentTypeCheckpoint)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /v1/checkpoint: %d: %s", resp.StatusCode, msg)
	}

	if err := replay(&out, tsB.URL, replayOptions{Seed: seed, Months: months, Days: days, Batch: 100, Loops: 1, Resume: true}); err != nil {
		t.Fatal(err)
	}
	resumed, err := srvB.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	opt, err := routing.NewPriceOptimizer(sc.Fleet, 1500, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sc.Policy = opt
	batch, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, batch) {
		t.Fatalf("kill/restore/resume replay diverged from batch Run:\nresumed: %+v\nbatch:   %+v", resumed, batch)
	}
}
