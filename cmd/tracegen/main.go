// Command tracegen exports the synthetic world as CSV traces: hourly
// real-time and day-ahead prices per hub, the daily Northwest series, and
// the 5-minute per-state CDN demand trace. The files use the tracefile
// formats, so they round-trip back into the simulator and can be swapped
// for real archives.
//
// It is also the load generator for the powerrouted daemon: -replay
// regenerates the same world (match the daemon's -seed/-months/-days) and
// streams the full price history plus the hourly long-run demand through
// the daemon's ingest endpoints, one routing decision per hour, at a
// configurable speedup.
//
// Usage:
//
//	tracegen [-seed N] [-months M] [-days D] -out DIR
//	tracegen [-seed N] [-months M] [-days D] -replay URL
//	         [-speedup X] [-batch N] [-loop N] [-kill-after N] [-resume]
//	         [-batch-spec every=N,kwh=E,slack=S,floor=F]
//	         [-burst-hubs SPEC -threshold-km KM] [-shards URL,URL]
//
// -burst-hubs switches the replay to the burst-exact clique world (see
// core.BurstWorld) — start the daemons with the same -burst-hubs and
// -threshold-km. In sharded mode the replay then doubles as the
// burst-token lease broker: it computes the fleet-wide 95/5 burst gate
// bit for every step from the full demand row and posts the lease window
// to each shard (POST /v1/leases) before the demand that consumes it, so
// a sharded replay's books match the unsplit daemon's byte for byte even
// while soft-cap bursts fire.
//
// -batch-spec folds a deterministic deferrable-job load into the demand
// replay (against a daemon started with its own -batch-spec): every N
// steps each cluster receives one job of E kWh, due S steps later, with a
// partial-execution floor of F. Jobs are keyed to absolute step numbers,
// so a -resume replay regenerates exactly the jobs the interrupted run
// would have posted.
//
// With -speedup 0 (the default) the replay free-runs as fast as the daemon
// routes, reporting sustained decision throughput; -speedup 3600 replays
// one simulated hour per wall second.
//
// -kill-after and -resume are the crash-recovery drill: -kill-after N
// stops the replay after N routed steps (kill the daemon there), and
// -resume asks the daemon where it stands — e.g. after powerrouted
// -restore — and finishes the horizon from that step, re-posting the
// reaction-delay price lookback so the resumed run is bit-identical to an
// uninterrupted one.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"powerroute/internal/market"
	"powerroute/internal/timeseries"
	"powerroute/internal/tracefile"
	"powerroute/internal/traffic"
)

func main() {
	seed := flag.Int64("seed", 42, "generation seed")
	months := flag.Int("months", market.DefaultMonths, "price history length in months")
	days := flag.Int("days", traffic.DefaultDays, "traffic trace length in days")
	out := flag.String("out", "", "output directory (required unless -replay)")
	replayURL := flag.String("replay", "", "powerrouted base URL to replay the world against (e.g. http://127.0.0.1:7946)")
	speedup := flag.Float64("speedup", 0, "replay pacing: simulated seconds per wall second (0 = as fast as possible)")
	batch := flag.Int("batch", 1024, "replay ingest batch size in steps")
	loops := flag.Int("loop", 1, "replay the price horizon this many times")
	killAfter := flag.Int("kill-after", 0, "stop the replay after this many routed steps (0 = full horizon; crash-drill mode)")
	resume := flag.Bool("resume", false, "resume from the daemon's next expected step (after powerrouted -restore)")
	shards := flag.String("shards", "", "comma-separated powerrouted shard URLs: ingest goes to the shards directly and concurrently, -replay names the coordinator (status only)")
	batchSpec := flag.String("batch-spec", "", "deferrable-job load riding the demand replay: every=<steps>,kwh=<energy>,slack=<deadline steps>,floor=<min fraction> (empty = no jobs)")
	burstHubs := flag.String("burst-hubs", "", "replay the burst-exact clique world instead of the derived one (match the daemons' -burst-hubs); with -shards the replay also brokers burst-token leases")
	burstThreshold := flag.Float64("threshold-km", 1500, "routing distance threshold the daemons run with (burst-hubs mode only; the burst world's soft caps depend on it)")
	flag.Parse()
	if *replayURL != "" {
		opt := replayOptions{
			Seed:        *seed,
			Months:      *months,
			Days:        *days,
			Batch:       *batch,
			Loops:       *loops,
			Speedup:     *speedup,
			KillAfter:   *killAfter,
			Resume:      *resume,
			BurstHubs:   *burstHubs,
			ThresholdKm: *burstThreshold,
		}
		if *batchSpec != "" {
			spec, err := parseJobSpec(*batchSpec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(2)
			}
			opt.Jobs = spec
		}
		for _, u := range strings.Split(*shards, ",") {
			u = strings.TrimRight(strings.TrimSpace(u), "/")
			if u != "" {
				opt.Shards = append(opt.Shards, u)
			}
		}
		if err := replay(os.Stdout, *replayURL, opt); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}
	if *batchSpec != "" {
		fmt.Fprintln(os.Stderr, "tracegen: -batch-spec only applies to -replay mode")
		os.Exit(2)
	}
	if *burstHubs != "" {
		fmt.Fprintln(os.Stderr, "tracegen: -burst-hubs only applies to -replay mode")
		os.Exit(2)
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -out DIR or -replay URL is required")
		os.Exit(2)
	}
	if err := run(*seed, *months, *days, *out, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(seed int64, months, days int, dir string, stdout io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	mkt, err := market.Generate(market.Config{Seed: seed, Months: months})
	if err != nil {
		return err
	}
	for _, h := range mkt.Hubs() {
		rt, err := mkt.RT(h.ID)
		if err != nil {
			return err
		}
		if err := writeCSV(filepath.Join(dir, "rt_"+h.ID+".csv"), func(f *os.File) error {
			return tracefile.WriteSeries(f, rt, "rt_price_usd_per_mwh")
		}); err != nil {
			return err
		}
		da, err := mkt.DA(h.ID)
		if err != nil {
			return err
		}
		if err := writeCSV(filepath.Join(dir, "da_"+h.ID+".csv"), func(f *os.File) error {
			return tracefile.WriteSeries(f, da, "da_price_usd_per_mwh")
		}); err != nil {
			return err
		}
	}
	if err := writeCSV(filepath.Join(dir, "da_MIDC_daily.csv"), func(f *os.File) error {
		return tracefile.WriteSeries(f, mkt.NorthwestDaily(), "da_price_usd_per_mwh")
	}); err != nil {
		return err
	}

	tr, err := traffic.Generate(traffic.Config{Seed: seed + 1, Days: days})
	if err != nil {
		return err
	}
	demand := &tracefile.Demand{
		Start: tr.Start,
		Step:  timeseries.FiveMinute,
	}
	for _, sd := range tr.States {
		demand.Columns = append(demand.Columns, sd.State.Code)
	}
	demand.Rows = make([][]float64, tr.Samples)
	for i := 0; i < tr.Samples; i++ {
		row := make([]float64, len(tr.States))
		for j := range tr.States {
			row[j] = tr.States[j].Rate[i]
		}
		demand.Rows[i] = row
	}
	if err := writeCSV(filepath.Join(dir, "demand_5min.csv"), func(f *os.File) error {
		return tracefile.WriteDemand(f, demand)
	}); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "tracegen: wrote %d price files and demand_5min.csv to %s\n", 2*len(mkt.Hubs())+1, dir)
	return nil
}

func writeCSV(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
