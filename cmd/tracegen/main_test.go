package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunTinyHorizon exports a one-month, one-day world and checks the
// expected trace files land on disk with content.
func TestRunTinyHorizon(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run(1, 1, 1, dir, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "demand_5min.csv") {
		t.Errorf("missing summary line, got %q", out.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var rt, da int
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", e.Name())
		}
		switch {
		case strings.HasPrefix(e.Name(), "rt_"):
			rt++
		case strings.HasPrefix(e.Name(), "da_"):
			da++
		}
	}
	if rt == 0 || da == 0 {
		t.Errorf("expected rt_ and da_ price files, got %d and %d", rt, da)
	}
	if _, err := os.Stat(filepath.Join(dir, "demand_5min.csv")); err != nil {
		t.Errorf("demand trace missing: %v", err)
	}
}
