package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuf is a goroutine-safe writer: run() logs from the serving
// goroutine while the test polls for the listen line.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`listening on (\S+) `)

// TestServeRouteShutdown boots the daemon on an ephemeral port with a tiny
// world, routes one interval over HTTP, then cancels the context and
// checks the graceful-shutdown summary.
func TestServeRouteShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errOut syncBuf
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-months", "1", "-days", "7"}, &out, &errOut)
	}()

	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened; stdout %q stderr %q", out.String(), errOut.String())
		}
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Discover the world, then feed one priced, routed interval.
	var world struct {
		Start    time.Time `json:"start"`
		States   []string  `json:"states"`
		Clusters []struct {
			Hub string `json:"hub"`
		} `json:"clusters"`
	}
	resp, err = http.Get(base + "/v1/world")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&world)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	prices := map[string]float64{}
	for _, cl := range world.Clusters {
		prices[cl.Hub] = 42
	}
	post := func(path string, v any) {
		t.Helper()
		body, _ := json.Marshal(v)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, msg)
		}
	}
	post("/v1/prices", map[string]any{"at": world.Start, "prices": prices})
	rates := make([]float64, len(world.States))
	for i := range rates {
		rates[i] = 1000
	}
	post("/v1/demand", map[string]any{"rates": rates})

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; stderr %q", code, errOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "routed 1 intervals") {
		t.Errorf("missing shutdown summary, got %q", out.String())
	}
}

// startDaemon boots run() with the given extra args on an ephemeral port
// and returns the base URL, output buffers, a cancel func, and the exit
// channel.
func startDaemon(t *testing.T, extra ...string) (string, *syncBuf, *syncBuf, context.CancelFunc, chan int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	var out, errOut syncBuf
	done := make(chan int, 1)
	argv := append([]string{"-addr", "127.0.0.1:0", "-months", "1", "-days", "7"}, extra...)
	go func() { done <- run(ctx, argv, &out, &errOut) }()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened; stdout %q stderr %q", out.String(), errOut.String())
		}
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], &out, &errOut, cancel, done
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStateDirRestoreAcrossRestart: a daemon with -state-dir writes a
// checkpoint on shutdown, and a second invocation with -restore resumes at
// the routed step instead of zero. A third invocation over a different
// world must refuse the checkpoint.
func TestStateDirRestoreAcrossRestart(t *testing.T) {
	stateDir := t.TempDir()
	base, out, errOut, cancel, done := startDaemon(t, "-state-dir", stateDir, "-checkpoint-every", "0")

	var world struct {
		Start    time.Time `json:"start"`
		States   []string  `json:"states"`
		Clusters []struct {
			Hub string `json:"hub"`
		} `json:"clusters"`
	}
	resp, err := http.Get(base + "/v1/world")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&world)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	prices := map[string]float64{}
	for _, cl := range world.Clusters {
		prices[cl.Hub] = 37
	}
	post := func(path string, v any) {
		t.Helper()
		body, _ := json.Marshal(v)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, msg)
		}
	}
	post("/v1/prices", map[string]any{"at": world.Start, "prices": prices})
	rates := make([]float64, len(world.States))
	for i := range rates {
		rates[i] = 800
	}
	post("/v1/demand", map[string]any{"rates": rates})
	post("/v1/demand", map[string]any{"rates": rates})

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; stderr %q", code, errOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "checkpoint written to") {
		t.Fatalf("no shutdown checkpoint in %q", out.String())
	}

	base2, out2, _, cancel2, done2 := startDaemon(t, "-state-dir", stateDir, "-restore")
	if !strings.Contains(out2.String(), "restored") {
		t.Errorf("no restore line in %q", out2.String())
	}
	resp, err = http.Get(base2 + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Steps int `json:"steps"`
	}
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if status.Steps != 2 {
		t.Fatalf("restored daemon at step %d, want 2", status.Steps)
	}
	cancel2()
	select {
	case <-done2:
	case <-time.After(30 * time.Second):
		t.Fatal("restored daemon did not shut down")
	}

	// A different world (2-month market) must refuse the checkpoint.
	var out3, errOut3 syncBuf
	ctx3, cancel3 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel3()
	code := run(ctx3, []string{"-addr", "127.0.0.1:0", "-months", "2", "-days", "7", "-state-dir", stateDir, "-restore"}, &out3, &errOut3)
	if code != 1 {
		t.Fatalf("foreign-world restore exited %d, want 1 (stderr %q)", code, errOut3.String())
	}
	if s := errOut3.String(); !strings.Contains(s, "mismatch") && !strings.Contains(s, "differs") {
		t.Errorf("foreign-world restore error unhelpful: %q", s)
	}
}

// TestBadInvocations covers flag and startup failures.
func TestBadInvocations(t *testing.T) {
	cases := []struct {
		argv []string
		want int
	}{
		{[]string{"-horizon", "nope"}, 2},
		{[]string{"stray-arg"}, 2},
		{[]string{"-not-a-flag"}, 2},
		{[]string{"-addr", "256.0.0.1:bad", "-months", "1", "-days", "2"}, 1},
		{[]string{"-restore"}, 2},
		{[]string{"-checkpoint-every", "-1s", "-state-dir", "x"}, 2},
		{[]string{"-state-dir", "/dev/null/nope", "-months", "1", "-days", "2"}, 1},
	}
	for _, tc := range cases {
		var out, errOut syncBuf
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		code := run(ctx, tc.argv, &out, &errOut)
		cancel()
		if code != tc.want {
			t.Errorf("%v: exit %d, want %d (stderr %q)", tc.argv, code, tc.want, errOut.String())
		}
	}
}

// TestShardServing: -shard-count/-shard-index serve one routing-closed
// market region — the shard's world lists only its own clusters and
// states — and invalid shard invocations fail with usage errors.
func TestShardServing(t *testing.T) {
	base, out, _, cancel, done := startDaemon(t, "-threshold-km", "1000", "-shard-count", "2", "-shard-index", "1")
	defer cancel()

	if !strings.Contains(out.String(), "serving shard 1/2") {
		t.Errorf("missing shard banner in %q", out.String())
	}
	var world struct {
		States   []string `json:"states"`
		Clusters []struct {
			Code string `json:"code"`
		} `json:"clusters"`
	}
	resp, err := http.Get(base + "/v1/world")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&world)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// At 1000 km the second region is the California markets.
	if len(world.Clusters) != 2 {
		t.Fatalf("shard 1 serves %d clusters, want 2 (CA1, CA2): %+v", len(world.Clusters), world.Clusters)
	}
	for _, cl := range world.Clusters {
		if !strings.HasPrefix(cl.Code, "CA") {
			t.Errorf("shard 1 serves cluster %s, want only California", cl.Code)
		}
	}
	if len(world.States) == 0 || len(world.States) >= 51 {
		t.Errorf("shard 1 serves %d states, want a strict non-empty subset", len(world.States))
	}
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shard daemon did not shut down")
	}
}

// TestShardBadInvocations: out-of-range shard indices and component
// counts the world cannot satisfy are usage errors.
func TestShardBadInvocations(t *testing.T) {
	cases := [][]string{
		{"-months", "1", "-days", "7", "-shard-count", "2", "-shard-index", "2"},
		{"-months", "1", "-days", "7", "-shard-count", "0"},
		{"-months", "1", "-days", "7", "-shard-index", "-1"},
		// The paper's 1500 km reach spans one region; a 2-way split must
		// name the achievable component count.
		{"-months", "1", "-days", "7", "-shard-count", "2"},
	}
	for _, argv := range cases {
		var out, errOut syncBuf
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		code := run(ctx, append([]string{"-addr", "127.0.0.1:0"}, argv...), &out, &errOut)
		cancel()
		if code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr %q)", argv, code, errOut.String())
		}
	}
}

// TestParallelShardServing: -parallel-shards serves the *whole* world —
// the /v1/world surface is the joint one, unlike -shard-count's regional
// slice — while running its market regions concurrently, routes demand,
// and prints the joint shutdown summary.
func TestParallelShardServing(t *testing.T) {
	base, out, errOut, cancel, done := startDaemon(t, "-threshold-km", "600", "-parallel-shards", "3")
	defer cancel()

	if !strings.Contains(out.String(), "running 3 market regions as in-process parallel shards") {
		t.Errorf("missing parallel banner in %q", out.String())
	}
	var world struct {
		Start    time.Time `json:"start"`
		States   []string  `json:"states"`
		Clusters []struct {
			Hub string `json:"hub"`
		} `json:"clusters"`
	}
	resp, err := http.Get(base + "/v1/world")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&world)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(world.States) != 51 {
		t.Fatalf("parallel daemon serves %d states, want the whole world's 51", len(world.States))
	}

	prices := map[string]float64{}
	for _, cl := range world.Clusters {
		prices[cl.Hub] = 42
	}
	post := func(path string, v any) {
		t.Helper()
		body, _ := json.Marshal(v)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, msg)
		}
	}
	post("/v1/prices", map[string]any{"at": world.Start, "prices": prices})
	rates := make([]float64, len(world.States))
	for i := range rates {
		rates[i] = 1000
	}
	post("/v1/demand", map[string]any{"rates": rates})

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; stderr %q", code, errOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("parallel daemon did not shut down")
	}
	if !strings.Contains(out.String(), "routed 1 intervals") {
		t.Errorf("missing shutdown summary, got %q", out.String())
	}
}

// TestParallelBadInvocations: -parallel-shards must match the world's
// region count and cannot be combined with the multi-process split or
// with -restore (a joint checkpoint cannot be split back into shards).
func TestParallelBadInvocations(t *testing.T) {
	cases := [][]string{
		{"-months", "1", "-days", "7", "-parallel-shards", "-1"},
		{"-months", "1", "-days", "7", "-parallel-shards", "2", "-shard-count", "2"},
		{"-months", "1", "-days", "7", "-parallel-shards", "2", "-restore", "-state-dir", "x"},
		// The paper's 1500 km reach spans one region; the error must name
		// the achievable count.
		{"-months", "1", "-days", "7", "-parallel-shards", "3"},
	}
	for _, argv := range cases {
		var out, errOut syncBuf
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		code := run(ctx, append([]string{"-addr", "127.0.0.1:0"}, argv...), &out, &errOut)
		cancel()
		if code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr %q)", argv, code, errOut.String())
		}
	}
}
