package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuf is a goroutine-safe writer: run() logs from the serving
// goroutine while the test polls for the listen line.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`listening on (\S+) `)

// TestServeRouteShutdown boots the daemon on an ephemeral port with a tiny
// world, routes one interval over HTTP, then cancels the context and
// checks the graceful-shutdown summary.
func TestServeRouteShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errOut syncBuf
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-months", "1", "-days", "7"}, &out, &errOut)
	}()

	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened; stdout %q stderr %q", out.String(), errOut.String())
		}
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Discover the world, then feed one priced, routed interval.
	var world struct {
		Start    time.Time `json:"start"`
		States   []string  `json:"states"`
		Clusters []struct {
			Hub string `json:"hub"`
		} `json:"clusters"`
	}
	resp, err = http.Get(base + "/v1/world")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&world)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	prices := map[string]float64{}
	for _, cl := range world.Clusters {
		prices[cl.Hub] = 42
	}
	post := func(path string, v any) {
		t.Helper()
		body, _ := json.Marshal(v)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, msg)
		}
	}
	post("/v1/prices", map[string]any{"at": world.Start, "prices": prices})
	rates := make([]float64, len(world.States))
	for i := range rates {
		rates[i] = 1000
	}
	post("/v1/demand", map[string]any{"rates": rates})

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; stderr %q", code, errOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "routed 1 intervals") {
		t.Errorf("missing shutdown summary, got %q", out.String())
	}
}

// TestBadInvocations covers flag and startup failures.
func TestBadInvocations(t *testing.T) {
	cases := []struct {
		argv []string
		want int
	}{
		{[]string{"-horizon", "nope"}, 2},
		{[]string{"stray-arg"}, 2},
		{[]string{"-not-a-flag"}, 2},
		{[]string{"-addr", "256.0.0.1:bad", "-months", "1", "-days", "2"}, 1},
	}
	for _, tc := range cases {
		var out, errOut syncBuf
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		code := run(ctx, tc.argv, &out, &errOut)
		cancel()
		if code != tc.want {
			t.Errorf("%v: exit %d, want %d (stderr %q)", tc.argv, code, tc.want, errOut.String())
		}
	}
}
