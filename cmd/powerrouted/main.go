// Command powerrouted is the online routing daemon: the paper's §6.1
// mapping system as a long-running HTTP service. It assembles the
// deterministic synthetic world (fleet, energy model, market geometry),
// wraps an incremental sim.Engine in internal/server, and then routes
// whatever price and demand feeds arrive over HTTP — one routing decision
// per demand interval, with the running bill, peaks, and battery
// state-of-charge queryable while it serves.
//
// Usage:
//
//	powerrouted [-addr HOST:PORT] [-seed N] [-months M] [-days D]
//	            [-horizon longrun|trace] [-threshold-km KM]
//	            [-price-threshold D] [-reaction-delay DUR]
//	            [-batch-spec w=W,pct=Q[,guard=0|1][,migrate=0|1]]
//	            [-state-dir DIR] [-checkpoint-every DUR] [-restore]
//	            [-shard-count N -shard-index I | -parallel-shards N]
//	            [-burst-hubs PAIR,PAIR,...]
//
// -burst-hubs replaces the derived world with the burst-exact clique
// world (core.BurstWorld): each comma-separated hub pair becomes one
// routing-closed region, soft caps are armed so the 95/5 burst gate
// genuinely fires, and sharded runs stay bit-identical to the joint
// engine. A whole-world daemon self-resolves the gate; a -shard-count
// daemon instead replays burst-token lease windows posted to its
// POST /v1/leases by the broker feeding it (powerroute-coord, or
// tracegen -replay -shards -burst-hubs).
//
// -batch-spec turns on the deferrable traffic class: each cluster gets a
// batch serving capacity of W watts per server and a price gate at the
// Q-th quantile of its hub's real-time price history, with the demand-peak
// guard and cross-region migration togglable. Jobs then arrive over POST
// /v1/demand (JSON "jobs" or the jobs=1 binary batch form) and are
// served, deferred, migrated, or shed by the engine's scheduler.
//
// With -parallel-shards the daemon still serves the whole world, but runs
// its routing-closed market regions as concurrent in-process engines (one
// goroutine per region; see sim.ParallelEngine) — the single-machine
// counterpart of the -shard-count/-shard-index multi-process split. The
// HTTP surface is unchanged except PUT /v1/checkpoint, which requires a
// single engine and answers 409.
//
// Feed it with cmd/tracegen's replay mode:
//
//	powerrouted -addr 127.0.0.1:7946 &
//	tracegen -replay http://127.0.0.1:7946
//
// With -state-dir the daemon is durable: engine state (billing meters,
// monthly demand peaks, 95/5 burst budgets, battery state-of-charge, step
// cursor) is checkpointed to DIR/checkpoint.ckpt periodically and on
// graceful shutdown, with atomic temp-file+rename writes. After a crash,
// -restore resumes mid-horizon from the newest checkpoint; the checkpoint
// carries a hash of the world that produced it, and the daemon refuses to
// restore into a different one (wrong -seed/-months/-horizon/tariff).
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// drain, a final checkpoint is written (when -state-dir is set), the
// engine's books are closed, and a final bill summary is printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"powerroute/internal/batchspec"
	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/experiments"
	"powerroute/internal/routing"
	"powerroute/internal/server"
	"powerroute/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main path. It blocks until ctx is cancelled (signal)
// or startup fails, and returns the process exit code.
func run(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("powerrouted", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7946", "listen address")
	seed := fs.Int64("seed", experiments.DefaultSeed, "world seed (must match the feed generator's)")
	months := fs.Int("months", 0, "override market history length in months (0 = the paper's 39)")
	days := fs.Int("days", 0, "override traffic trace length in days (0 = the paper's 24)")
	horizon := fs.String("horizon", "longrun", "routing interval source: longrun (hourly) or trace (5-minute)")
	thresholdKm := fs.Float64("threshold-km", 1500, "optimizer distance threshold (paper's elbow)")
	priceThreshold := fs.Float64("price-threshold", routing.DefaultPriceThreshold, "price differential dead-band ($/MWh)")
	delay := fs.Duration("reaction-delay", sim.DefaultReactionDelay, "lag between a price taking effect and the router seeing it")
	batchSpec := fs.String("batch-spec", "", "deferrable batch class: w=<watts/server>,pct=<price quantile>[,guard=0|1][,migrate=0|1] (empty = no batch class)")
	burstHubs := fs.String("burst-hubs", "", "serve the burst-exact clique world instead of the derived one: comma-separated hub pairs, e.g. NP15+SP15,NYC+DOM (soft caps armed, burst gate fleet-coordinated)")
	stateDir := fs.String("state-dir", "", "directory for durable engine checkpoints (empty = no persistence)")
	ckptEvery := fs.Duration("checkpoint-every", time.Minute, "periodic checkpoint interval when -state-dir is set (0 = shutdown-only)")
	restore := fs.Bool("restore", false, "resume from -state-dir's checkpoint instead of starting fresh")
	shardCount := fs.Int("shard-count", 1, "serve one shard of the world split into this many market regions (1 = the whole world)")
	shardIndex := fs.Int("shard-index", 0, "which shard to serve when -shard-count > 1 (0-based)")
	parallelShards := fs.Int("parallel-shards", 0, "run the world's routing-closed market regions as in-process parallel engines (0 = one engine; otherwise must equal the region count at -threshold-km)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "powerrouted: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if *restore && *stateDir == "" {
		fmt.Fprintln(stderr, "powerrouted: -restore requires -state-dir")
		return 2
	}
	if *ckptEvery < 0 {
		fmt.Fprintln(stderr, "powerrouted: negative -checkpoint-every")
		return 2
	}
	if *parallelShards < 0 {
		fmt.Fprintln(stderr, "powerrouted: negative -parallel-shards")
		return 2
	}
	if *parallelShards > 0 && *shardCount > 1 {
		fmt.Fprintln(stderr, "powerrouted: -parallel-shards runs every region in this process; it cannot be combined with -shard-count")
		return 2
	}
	if *parallelShards > 0 && *restore {
		fmt.Fprintln(stderr, "powerrouted: -restore requires a single engine (a joint checkpoint cannot be split back into shards); drop -parallel-shards to restore")
		return 2
	}
	if *batchSpec != "" && *parallelShards > 0 {
		fmt.Fprintln(stderr, "powerrouted: -batch-spec needs the single-engine job ingest path; it cannot be combined with -parallel-shards (use -shard-count for a sharded batch world)")
		return 2
	}
	if *burstHubs != "" && *batchSpec != "" {
		fmt.Fprintln(stderr, "powerrouted: -burst-hubs and -batch-spec are not supported together")
		return 2
	}
	if *burstHubs != "" && *horizon != "longrun" {
		fmt.Fprintln(stderr, "powerrouted: -burst-hubs serves the hourly long-run horizon only")
		return 2
	}

	sys, err := core.NewSystem(core.Options{Seed: *seed, MarketMonths: *months, TraceDays: *days})
	if err != nil {
		fmt.Fprintln(stderr, "powerrouted:", err)
		return 1
	}
	var sc sim.Scenario
	if *burstHubs != "" {
		// The burst-exact clique world: soft caps armed tight enough that
		// 95/5 bursts genuinely fire, constructed so sharded and joint
		// runs stay bit-identical (see core.BurstWorld).
		pairs, err := core.ParseBurstHubs(*burstHubs)
		if err != nil {
			fmt.Fprintln(stderr, "powerrouted:", err)
			return 2
		}
		bw, err := sys.BurstWorld(pairs, *thresholdKm, *priceThreshold)
		if err != nil {
			fmt.Fprintln(stderr, "powerrouted:", err)
			return 1
		}
		if sc, err = sys.BurstScenario(bw, *thresholdKm, *priceThreshold, *delay); err != nil {
			fmt.Fprintln(stderr, "powerrouted:", err)
			return 1
		}
	} else {
		sc = sim.Scenario{
			Fleet:         sys.Fleet,
			Energy:        energy.OptimisticFuture,
			Market:        sys.Market,
			ReactionDelay: *delay,
		}
		switch *horizon {
		case "longrun":
			sc.Demand = sys.LongRun
			sc.Start = sys.Market.Start
			sc.Steps = sys.Market.Hours
			sc.Step = time.Hour
		case "trace":
			demand, err := sim.FromTrace(sys.Trace)
			if err != nil {
				fmt.Fprintln(stderr, "powerrouted:", err)
				return 1
			}
			sc.Demand = demand
			sc.Start = sys.Trace.Start
			sc.Steps = sys.Trace.Samples
			sc.Step = 5 * time.Minute
		default:
			fmt.Fprintf(stderr, "powerrouted: unknown horizon %q (longrun or trace)\n", *horizon)
			return 2
		}
		opt, err := routing.NewPriceOptimizer(sys.Fleet, *thresholdKm, *priceThreshold)
		if err != nil {
			fmt.Fprintln(stderr, "powerrouted:", err)
			return 1
		}
		sc.Policy = opt
	}

	// The deferrable batch class is configured against the joint world —
	// before any shard split, so every shard (and the coordinator's merge)
	// sees the same per-cluster capacities and price gates.
	if *batchSpec != "" {
		cfg, err := batchspec.Parse(*batchSpec, sys.Fleet, sys.Market)
		if err != nil {
			fmt.Fprintln(stderr, "powerrouted:", err)
			return 2
		}
		sc.Batch = cfg
	}

	// Multi-region sharding: this instance serves one routing-closed
	// region of the world. The partition is derived deterministically from
	// the fleet and the optimizer's reach, so every shard (and the
	// coordinator) computes the same split from the same flags.
	if *shardCount < 1 || *shardIndex < 0 || *shardIndex >= *shardCount {
		fmt.Fprintf(stderr, "powerrouted: -shard-index %d out of range for -shard-count %d\n", *shardIndex, *shardCount)
		return 2
	}
	if *shardCount > 1 {
		partition, err := sim.PartitionByRouting(sc.Policy.(routing.Sharder), sc.Fleet)
		if err != nil {
			fmt.Fprintln(stderr, "powerrouted:", err)
			return 1
		}
		if got := partition.Shards(); got != *shardCount {
			fmt.Fprintf(stderr, "powerrouted: the world splits into %d market regions at -threshold-km %g, not %d (the paper's 1500 km reach spans one region; try 1000 for 2 or 600 for 3)\n",
				got, *thresholdKm, *shardCount)
			return 2
		}
		subs, err := sc.Shard(partition)
		if err != nil {
			fmt.Fprintln(stderr, "powerrouted:", err)
			return 1
		}
		sc = subs[*shardIndex]
		codes := make([]string, len(sc.Fleet.Clusters))
		for i, cl := range sc.Fleet.Clusters {
			codes[i] = cl.Code
		}
		fmt.Fprintf(stdout, "powerrouted: serving shard %d/%d: clusters %v, %d states\n",
			*shardIndex, *shardCount, codes, len(sc.Fleet.States))
	}

	// Burst gate wiring: a whole-world engine (single, parallel, or
	// restored) resolves the fleet-wide gate itself; a shard daemon cannot
	// see the fleet's demand, so it replays gate bits a broker (the
	// coordinator or tracegen's sharded replay) posts to /v1/leases.
	var leases *sim.LeaseStore
	if *burstHubs != "" {
		if *shardCount > 1 {
			leases = &sim.LeaseStore{}
			sc.BurstGate = leases
		} else {
			sc.BurstGate = sim.SelfGate{}
		}
	}

	var ckptPath string
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "powerrouted:", err)
			return 1
		}
		ckptPath = filepath.Join(*stateDir, "checkpoint.ckpt")
	}
	var eng server.Engine
	switch {
	case *restore:
		cp, err := sim.ReadCheckpointFile(ckptPath)
		if err != nil {
			fmt.Fprintf(stderr, "powerrouted: reading checkpoint %s: %v\n", ckptPath, err)
			return 1
		}
		restored, err := sim.Restore(sc, cp)
		if err != nil {
			fmt.Fprintln(stderr, "powerrouted:", err)
			return 1
		}
		fmt.Fprintf(stdout, "powerrouted: restored %s at step %d (next interval %v)\n",
			ckptPath, cp.StepsRun, restored.Next())
		eng = restored
	case *parallelShards > 0:
		// In-process parallel shards: one engine per routing-closed market
		// region, stepped concurrently, serving the joint world's books.
		partition, err := sim.PartitionByRouting(sc.Policy.(routing.Sharder), sc.Fleet)
		if err != nil {
			fmt.Fprintln(stderr, "powerrouted:", err)
			return 1
		}
		if got := partition.Shards(); got != *parallelShards {
			fmt.Fprintf(stderr, "powerrouted: the world splits into %d market regions at -threshold-km %g, not %d (the paper's 1500 km reach spans one region; try 1000 for 2 or 600 for 3)\n",
				got, *thresholdKm, *parallelShards)
			return 2
		}
		peng, err := sim.NewParallelEngine(sc, partition)
		if err != nil {
			fmt.Fprintln(stderr, "powerrouted:", err)
			return 1
		}
		fmt.Fprintf(stdout, "powerrouted: running %d market regions as in-process parallel shards\n", peng.Shards())
		eng = peng
	default:
		single, err := sim.NewEngine(sc)
		if err != nil {
			fmt.Fprintln(stderr, "powerrouted:", err)
			return 1
		}
		eng = single
	}
	srv, err := server.New(server.Config{Engine: eng, Leases: leases})
	if err != nil {
		fmt.Fprintln(stderr, "powerrouted:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "powerrouted:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "powerrouted: listening on %s (policy %s, step %v, %d clusters, %d states)\n",
		ln.Addr(), sc.Policy.Name(), sc.Step, len(sc.Fleet.Clusters), len(sc.Fleet.States))

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Periodic checkpointing: each tick snapshots the engine under the
	// server lock and atomically replaces the state file, so a SIGKILL at
	// any instant leaves either the previous or the new checkpoint — never
	// a torn one.
	var ckptDone chan struct{}
	if ckptPath != "" && *ckptEvery > 0 {
		ckptDone = make(chan struct{})
		go func() {
			defer close(ckptDone)
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := srv.WriteCheckpointFile(ckptPath); err != nil {
						fmt.Fprintln(stderr, "powerrouted: checkpoint:", err)
					}
				}
			}
		}()
	}

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "powerrouted:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: drain in-flight requests, write a final
	// checkpoint, then close the books.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(stderr, "powerrouted: shutdown:", err)
	}
	if ckptDone != nil {
		<-ckptDone
	}
	if ckptPath != "" {
		if err := srv.WriteCheckpointFile(ckptPath); err != nil {
			fmt.Fprintln(stderr, "powerrouted: final checkpoint:", err)
		} else {
			fmt.Fprintf(stdout, "powerrouted: checkpoint written to %s\n", ckptPath)
		}
	}
	if res, err := srv.Finalize(); err != nil {
		// Expected when the daemon is stopped before any traffic arrived.
		fmt.Fprintf(stdout, "powerrouted: no intervals routed (%v)\n", err)
	} else {
		fmt.Fprintf(stdout, "powerrouted: routed %d intervals, total bill $%.2f, energy %.1f MWh, mean distance %.0f km\n",
			res.Steps, float64(res.TotalCost), res.TotalEnergy.MegawattHours(), res.MeanDistanceKm)
	}
	return 0
}
