// Command powerroute-coord is the multi-region shard coordinator: the
// fleet-wide HTTP face of N powerrouted shard instances, one per
// electricity market region.
//
// It assembles the same deterministic joint world as powerrouted (match
// -seed/-months/-days/-horizon/-threshold-km/-price-threshold/
// -reaction-delay across the coordinator and every shard), discovers each
// shard's cluster/state ownership from its /v1/world, and then:
//
//   - fans POST /v1/prices out to every shard verbatim (shards ignore
//     hubs they host no cluster on),
//   - splits POST /v1/demand (JSON or binary batch) by state ownership
//     and posts each shard its own columns concurrently,
//   - periodically pulls GET /v1/checkpoint from every shard, merges the
//     parts with sim.MergeCheckpoints, restores the merged state into a
//     joint-world engine, and serves fleet-wide GET /v1/status and
//     /metrics from that snapshot — bit-for-bit what one powerrouted
//     serving the unsplit world would report,
//   - serves GET /v1/checkpoint as the merged joint-world checkpoint
//     (restorable by a single powerrouted via PUT /v1/checkpoint).
//
// With -burst-hubs (matching every shard's) the joint world is the
// burst-exact clique world and the coordinator doubles as the burst-token
// lease broker: before each demand fan-out it resolves the fleet-wide
// 95/5 gate bit from the full demand row and posts the lease window to
// every shard's POST /v1/leases, so the sharded fleet's burst ledgers —
// and its books — match an unsplit powerrouted byte for byte.
//
// With -spill the demand splitter reroutes a saturated region's overflow
// to the cheapest reachable sibling region with open capacity, metered at
// the clusters that serve it (deliberately not byte-comparable).
//
// Usage:
//
//	powerrouted -addr 127.0.0.1:7950 -threshold-km 1000 -shard-count 2 -shard-index 0 &
//	powerrouted -addr 127.0.0.1:7951 -threshold-km 1000 -shard-count 2 -shard-index 1 &
//	powerroute-coord -addr 127.0.0.1:7946 -threshold-km 1000 \
//	    -shards http://127.0.0.1:7950,http://127.0.0.1:7951
//	tracegen -replay http://127.0.0.1:7946
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"powerroute/internal/batchspec"
	"powerroute/internal/coord"
	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/experiments"
	"powerroute/internal/routing"
	"powerroute/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main path.
func run(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("powerroute-coord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7946", "listen address")
	shards := fs.String("shards", "", "comma-separated powerrouted shard base URLs (required)")
	seed := fs.Int64("seed", experiments.DefaultSeed, "world seed (must match every shard's)")
	months := fs.Int("months", 0, "override market history length in months (0 = the paper's 39)")
	days := fs.Int("days", 0, "override traffic trace length in days (0 = the paper's 24)")
	horizon := fs.String("horizon", "longrun", "routing interval source: longrun (hourly) or trace (5-minute)")
	thresholdKm := fs.Float64("threshold-km", 1500, "optimizer distance threshold (must match the shards')")
	priceThreshold := fs.Float64("price-threshold", routing.DefaultPriceThreshold, "price differential dead-band ($/MWh)")
	delay := fs.Duration("reaction-delay", sim.DefaultReactionDelay, "lag between a price taking effect and the router seeing it")
	batchSpec := fs.String("batch-spec", "", "deferrable batch class, matching every shard's -batch-spec (empty = no batch class)")
	burstHubs := fs.String("burst-hubs", "", "coordinate the burst-exact clique world, matching every shard's -burst-hubs; the coordinator then brokers burst-token leases to the shards")
	spill := fs.Bool("spill", false, "reroute a saturated region's demand overflow to the cheapest reachable sibling region (breaks byte-parity with an unsplit daemon)")
	spillRadius := fs.Float64("spill-radius-km", 0, "bound on which sibling regions overflow may reach (0 = any sibling)")
	mergeEvery := fs.Duration("merge-every", 10*time.Second, "how often to pull and merge shard checkpoints (0 = on demand only)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "powerroute-coord: unexpected arguments %v\n", fs.Args())
		return 2
	}
	urls := splitURLs(*shards)
	if len(urls) == 0 {
		fmt.Fprintln(stderr, "powerroute-coord: -shards URL,URL,... is required")
		return 2
	}
	if *mergeEvery < 0 {
		fmt.Fprintln(stderr, "powerroute-coord: negative -merge-every")
		return 2
	}

	if *burstHubs != "" && *batchSpec != "" {
		fmt.Fprintln(stderr, "powerroute-coord: -burst-hubs and -batch-spec are not supported together")
		return 2
	}
	if *burstHubs != "" && *horizon != "longrun" {
		fmt.Fprintln(stderr, "powerroute-coord: -burst-hubs serves the hourly long-run horizon only")
		return 2
	}

	sys, err := core.NewSystem(core.Options{Seed: *seed, MarketMonths: *months, TraceDays: *days})
	if err != nil {
		fmt.Fprintln(stderr, "powerroute-coord:", err)
		return 1
	}
	var sc sim.Scenario
	if *burstHubs != "" {
		// The burst-exact clique world. SelfGate on the joint scenario does
		// double duty: it marks the world as burst-coordinated (arming the
		// coordinator's lease broker) and lets merged lease-bearing shard
		// checkpoints restore into the joint engine for /v1/status.
		pairs, err := core.ParseBurstHubs(*burstHubs)
		if err != nil {
			fmt.Fprintln(stderr, "powerroute-coord:", err)
			return 2
		}
		bw, err := sys.BurstWorld(pairs, *thresholdKm, *priceThreshold)
		if err != nil {
			fmt.Fprintln(stderr, "powerroute-coord:", err)
			return 1
		}
		if sc, err = sys.BurstScenario(bw, *thresholdKm, *priceThreshold, *delay); err != nil {
			fmt.Fprintln(stderr, "powerroute-coord:", err)
			return 1
		}
		sc.BurstGate = sim.SelfGate{}
	} else {
		sc = sim.Scenario{
			Fleet:         sys.Fleet,
			Energy:        energy.OptimisticFuture,
			Market:        sys.Market,
			ReactionDelay: *delay,
		}
		switch *horizon {
		case "longrun":
			sc.Demand = sys.LongRun
			sc.Start = sys.Market.Start
			sc.Steps = sys.Market.Hours
			sc.Step = time.Hour
		case "trace":
			demand, err := sim.FromTrace(sys.Trace)
			if err != nil {
				fmt.Fprintln(stderr, "powerroute-coord:", err)
				return 1
			}
			sc.Demand = demand
			sc.Start = sys.Trace.Start
			sc.Steps = sys.Trace.Samples
			sc.Step = 5 * time.Minute
		default:
			fmt.Fprintf(stderr, "powerroute-coord: unknown horizon %q (longrun or trace)\n", *horizon)
			return 2
		}
		opt, err := routing.NewPriceOptimizer(sys.Fleet, *thresholdKm, *priceThreshold)
		if err != nil {
			fmt.Fprintln(stderr, "powerroute-coord:", err)
			return 1
		}
		sc.Policy = opt
	}

	// The batch class must be configured against the same joint world the
	// shards split: restoring merged shard checkpoints that carry batch
	// queue sections requires the joint scenario to carry the scheduler
	// config too (and with identical capacities and price gates, or the
	// merged /v1/status would diverge from an unsplit powerrouted's).
	if *batchSpec != "" {
		cfg, err := batchspec.Parse(*batchSpec, sys.Fleet, sys.Market)
		if err != nil {
			fmt.Fprintln(stderr, "powerroute-coord:", err)
			return 2
		}
		sc.Batch = cfg
	}

	co, err := coord.New(ctx, coord.Config{
		Scenario:      sc,
		ShardURLs:     urls,
		Spill:         *spill,
		SpillRadiusKm: *spillRadius,
	})
	if err != nil {
		fmt.Fprintln(stderr, "powerroute-coord:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "powerroute-coord:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: co.Handler()}
	fmt.Fprintf(stdout, "powerroute-coord: listening on %s, coordinating %d shards (policy %s, step %v)\n",
		ln.Addr(), len(urls), sc.Policy.Name(), sc.Step)
	for i, url := range urls {
		fmt.Fprintf(stdout, "powerroute-coord:   shard %d: %s\n", i, url)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	go co.Run(ctx, *mergeEvery, stderr)

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "powerroute-coord:", err)
		return 1
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(stderr, "powerroute-coord: shutdown:", err)
	}
	return 0
}

// splitURLs parses the -shards flag, trimming whitespace and trailing
// slashes and dropping empty entries.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			out = append(out, u)
		}
	}
	return out
}
