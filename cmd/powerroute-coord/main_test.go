package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"powerroute/internal/core"
	"powerroute/internal/energy"
	"powerroute/internal/routing"
	"powerroute/internal/server"
	"powerroute/internal/sim"
)

// syncBuf is a goroutine-safe writer shared with the serving goroutine.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`listening on (\S+),`)

// startShards builds the 1-month/7-day world at a 1000 km reach, splits
// it into its two market regions, and serves each from a real shard
// daemon behind httptest.
func startShards(t *testing.T) []string {
	t.Helper()
	sys, err := core.NewSystem(core.Options{Seed: 42, MarketMonths: 1, TraceDays: 7})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := routing.NewPriceOptimizer(sys.Fleet, 1000, routing.DefaultPriceThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.Scenario{
		Fleet:         sys.Fleet,
		Policy:        opt,
		Energy:        energy.OptimisticFuture,
		Market:        sys.Market,
		Demand:        sys.LongRun,
		Start:         sys.Market.Start,
		Steps:         sys.Market.Hours,
		Step:          time.Hour,
		ReactionDelay: sim.DefaultReactionDelay,
	}
	partition, err := sim.PartitionByRouting(opt, sys.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := sc.Shard(partition)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, len(subs))
	for i, sub := range subs {
		eng, err := sim.NewEngine(sub)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// TestCoordServeAndShutdown boots the coordinator against two live shard
// daemons, checks the fleet-wide world view, and shuts down gracefully.
func TestCoordServeAndShutdown(t *testing.T) {
	urls := startShards(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errOut syncBuf
	done := make(chan int, 1)
	argv := []string{"-addr", "127.0.0.1:0", "-months", "1", "-days", "7",
		"-threshold-km", "1000", "-shards", strings.Join(urls, ","), "-merge-every", "0"}
	go func() { done <- run(ctx, argv, &out, &errOut) }()

	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never listened; stdout %q stderr %q", out.String(), errOut.String())
		}
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/v1/world")
	if err != nil {
		t.Fatal(err)
	}
	var world struct {
		Shards   []string `json:"shards"`
		Clusters []struct {
			Code  string `json:"code"`
			Shard string `json:"shard"`
		} `json:"clusters"`
		States []string `json:"states"`
	}
	err = json.NewDecoder(resp.Body).Decode(&world)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(world.Shards) != 2 || len(world.Clusters) != 9 || len(world.States) != 51 {
		t.Fatalf("fleet-wide world has %d shards, %d clusters, %d states", len(world.Shards), len(world.Clusters), len(world.States))
	}
	for _, cl := range world.Clusters {
		if cl.Shard == "" {
			t.Errorf("cluster %s has no owning shard", cl.Code)
		}
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; stderr %q", code, errOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not shut down")
	}
}

// TestCoordBadInvocations covers flag and startup failures.
func TestCoordBadInvocations(t *testing.T) {
	cases := []struct {
		argv []string
		want int
	}{
		{[]string{}, 2}, // -shards required
		{[]string{"-shards", "http://127.0.0.1:1", "-horizon", "nope"}, 2},
		{[]string{"-shards", "http://127.0.0.1:1", "stray"}, 2},
		{[]string{"-shards", "http://127.0.0.1:1", "-merge-every", "-1s"}, 2},
		// Unreachable shard: discovery fails at startup.
		{[]string{"-shards", "http://127.0.0.1:1", "-months", "1", "-days", "7"}, 1},
	}
	for _, tc := range cases {
		var out, errOut syncBuf
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		code := run(ctx, tc.argv, &out, &errOut)
		cancel()
		if code != tc.want {
			t.Errorf("%v: exit %d, want %d (stderr %q)", tc.argv, code, tc.want, errOut.String())
		}
	}
}
